package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Router is the coordinator's HTTP face: the same endpoint surface as
// a single seqserve backend (POST /search, POST /search/stream, GET
// /healthz, /readyz, /statsz, /metrics, /debug/traces) plus GET
// /shardmap, so clients and harnesses point at a router exactly like
// they point at one server. The only wire difference is the response
// envelope: every routed answer carries complete / shards_ok /
// shards_failed / shard_map_version.
type Router struct {
	c        *Coordinator
	mux      *http.ServeMux
	draining atomic.Bool
}

// maxRouterBodyBytes mirrors the backend's single-POST body cap; the
// router enforces it too so an oversized request dies in one hop.
const maxRouterBodyBytes = 1 << 20

// NewRouter builds the handler set over a coordinator.
func NewRouter(c *Coordinator) *Router {
	rt := &Router{c: c, mux: http.NewServeMux()}
	rt.mux.HandleFunc("/search", rt.handleSearch)
	rt.mux.HandleFunc("/search/stream", rt.handleStream)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/statsz", rt.handleStatsz)
	rt.mux.HandleFunc("/shardmap", rt.handleShardMap)
	rt.mux.Handle("/metrics", c.m.reg.Handler())
	rt.mux.Handle("/debug/traces", c.m.ring)
	return rt
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// BeginDrain flips the router into shutdown mode: new requests and
// streams are refused with 503/draining (in-flight ones finish), and
// /healthz + /readyz go unhealthy so load balancers stop sending work.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// failRequest writes an apiError in the backend's ErrorResponse shape
// and finishes the trace with the sentinel as its outcome.
func (rt *Router) failRequest(w http.ResponseWriter, tr *obs.Trace, aerr *apiError) {
	rt.c.m.errored.Add(1)
	if aerr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
	}
	rt.writeJSON(w, aerr.status, server.ErrorResponse{Error: aerr.code, Detail: aerr.detail, RequestID: tr.ID})
	rt.finishTrace(tr, aerr.code)
}

func (rt *Router) finishTrace(tr *obs.Trace, outcome string) {
	tr.Finish(outcome)
	rt.c.m.ring.Publish(tr)
}

// effTimeout resolves a request's effective deadline: the tighter of
// its timeout_ms and the router's RequestTimeout (matching the
// backend's own rule, so the router never outlives its backends'
// patience by accident).
func (rt *Router) effTimeout(ms int64) time.Duration {
	var d time.Duration
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if lim := rt.c.cfg.RequestTimeout; lim > 0 && (d == 0 || d > lim) {
		d = lim
	}
	return d
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	tr := obs.StartTrace(r.Header.Get("X-Request-Id"))
	tr.Path = "route_search"
	w.Header().Set("X-Request-Id", tr.ID)
	if rt.draining.Load() {
		rt.failRequest(w, tr, errDraining)
		return
	}
	if r.Method != http.MethodPost {
		rt.failRequest(w, tr, &apiError{status: http.StatusMethodNotAllowed, code: server.ErrBadMethod,
			detail: "use POST with a JSON body"})
		return
	}
	var creq Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&creq); err != nil {
		rt.failRequest(w, tr, &apiError{status: http.StatusBadRequest, code: server.ErrBadRequest,
			detail: fmt.Sprintf("decoding request body: %v", err)})
		return
	}

	rt.c.m.requests.Add(1)
	rt.c.m.inFlight.Add(1)
	defer rt.c.m.inFlight.Add(-1)

	ctx := r.Context()
	if d := rt.effTimeout(creq.TimeoutMs); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ctx = WithRequestID(ctx, tr.ID)

	resp, spans, aerr := rt.c.Search(ctx, &creq)
	for _, sp := range spans {
		tr.SpanAt(sp.stage, sp.start, sp.dur)
	}
	if aerr != nil {
		rt.failRequest(w, tr, aerr)
		return
	}
	resp.TookUs = time.Since(tr.Start).Microseconds()
	rt.c.m.totalH.Observe(time.Since(tr.Start))
	tr.Kernel = resp.Kernel
	tr.QueryLen = resp.QueryLen
	tr.Exhausted = resp.Exhaustive
	tr.CacheHit = resp.Cached
	rt.writeJSON(w, http.StatusOK, resp)
	outcome := obs.OutcomeOK
	if !resp.Complete {
		outcome = "partial"
	}
	rt.finishTrace(tr, outcome)
}

// StreamRequest is one NDJSON line of the router's POST /search/stream
// body: the backend's line shape plus require_complete. Mode
// "all_vs_all" normalizes to an exhaustive scan before fan-out (the
// router has no coalescing batcher; the backends it fans to do).
type StreamRequest struct {
	ID              string `json:"id,omitempty"`
	Mode            string `json:"mode,omitempty"`
	RequireComplete bool   `json:"require_complete,omitempty"`
	server.SearchRequest
}

// StreamResult is one result line of the router's stream: the client
// tag plus the full routed Response envelope.
type StreamResult struct {
	ID string `json:"id,omitempty"`
	Response
}

type streamErrLine struct {
	ID        string `json:"id,omitempty"`
	Error     string `json:"error"`
	Detail    string `json:"detail,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

type streamEndLine struct {
	Terminal bool   `json:"terminal"`
	Error    string `json:"error,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Lines    int64  `json:"lines"`
	Results  int64  `json:"results"`
	Errors   int64  `json:"errors"`
}

// handleStream fans a bulk NDJSON connection out: each decoded line
// becomes one scatter-gather Search, up to StreamWindow in flight at
// once, results written back as they complete (out of order, matched
// by id) and the stream closed by exactly one terminal line. Compared
// to the backend's stream the router's is deliberately simpler — no
// stall supervision (the backends' own stall cutoffs bound every
// line's tries) and flush-per-line (a routed line already amortizes a
// whole fan-out, so the syscall is noise).
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	tr := obs.StartTrace(r.Header.Get("X-Request-Id"))
	tr.Path = "route_stream"
	w.Header().Set("X-Request-Id", tr.ID)
	if rt.draining.Load() {
		rt.failRequest(w, tr, errDraining)
		return
	}
	if r.Method != http.MethodPost {
		rt.failRequest(w, tr, &apiError{status: http.StatusMethodNotAllowed, code: server.ErrBadMethod,
			detail: "use POST with an NDJSON body"})
		return
	}
	connID := tr.ID
	rt.c.m.streamsTotal.Add(1)

	ctl := http.NewResponseController(w)
	_ = ctl.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = ctl.Flush()

	var (
		mu      sync.Mutex // owns the ResponseWriter
		wg      sync.WaitGroup
		lines   atomic.Int64
		results atomic.Int64
		errs    atomic.Int64
	)
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(v); err == nil {
			_ = ctl.Flush()
		}
	}
	emitErr := func(id, reqID string, aerr *apiError) {
		errs.Add(1)
		rt.c.m.streamErrors.Add(1)
		writeLine(&streamErrLine{ID: id, Error: aerr.code, Detail: aerr.detail, RequestID: reqID})
	}

	slots := make(chan struct{}, rt.c.cfg.StreamWindow)
	end := (*apiError)(nil)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxRouterBodyBytes)
pump:
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // NDJSON keep-alive
		}
		if rt.draining.Load() {
			end = errDraining
			break
		}
		lineNo := lines.Add(1)
		rt.c.m.streamLines.Add(1)
		reqID := fmt.Sprintf("%s#%d", connID, lineNo)

		var sreq StreamRequest
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(&sreq); derr != nil {
			emitErr("", reqID, &apiError{status: 400, code: server.ErrBadRequest,
				detail: fmt.Sprintf("decoding line %d: %v", lineNo, derr)})
			continue
		}
		if len(sreq.ID) > server.MaxStreamIDLen {
			emitErr("", reqID, &apiError{status: 400, code: server.ErrBadID,
				detail: fmt.Sprintf("id is %d bytes, limit %d", len(sreq.ID), server.MaxStreamIDLen)})
			continue
		}
		switch sreq.Mode {
		case "":
		case server.StreamModeAllVsAll:
			sreq.Exhaustive = true
		default:
			emitErr(sreq.ID, reqID, &apiError{status: 400, code: server.ErrBadMode,
				detail: fmt.Sprintf("unknown mode %q (valid: %q)", sreq.Mode, server.StreamModeAllVsAll)})
			continue
		}

		select {
		case slots <- struct{}{}:
		case <-r.Context().Done():
			end = errClientGone
			break pump
		}
		wg.Add(1)
		rt.c.m.requests.Add(1)
		rt.c.m.inFlight.Add(1)
		go func(sreq StreamRequest, reqID string) {
			defer func() {
				rt.c.m.inFlight.Add(-1)
				wg.Done()
				<-slots
			}()
			start := time.Now()
			ctx := r.Context()
			if d := rt.effTimeout(sreq.TimeoutMs); d > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, d)
				defer cancel()
			}
			ctx = WithRequestID(ctx, reqID)
			creq := Request{SearchRequest: sreq.SearchRequest, RequireComplete: sreq.RequireComplete}
			resp, _, aerr := rt.c.Search(ctx, &creq)
			if aerr != nil {
				emitErr(sreq.ID, reqID, aerr)
				return
			}
			resp.TookUs = time.Since(start).Microseconds()
			rt.c.m.totalH.Observe(time.Since(start))
			results.Add(1)
			rt.c.m.streamResults.Add(1)
			writeLine(&StreamResult{ID: sreq.ID, Response: *resp})
		}(sreq, reqID)
	}
	if end == nil {
		if serr := sc.Err(); serr != nil {
			if serr == bufio.ErrTooLong {
				end = &apiError{code: server.ErrBadRequest,
					detail: fmt.Sprintf("request line exceeds %d bytes; stream cut off", maxRouterBodyBytes)}
			} else {
				end = errClientGone
			}
		}
	}
	wg.Wait() // settle every in-flight line before the terminal one

	endLine := streamEndLine{Terminal: true, Lines: lines.Load(), Results: results.Load(), Errors: errs.Load()}
	if end != nil {
		endLine.Error = end.code
		endLine.Detail = end.detail
	}
	writeLine(&endLine)
	outcome := obs.OutcomeOK
	if end != nil {
		outcome = end.code
	}
	rt.finishTrace(tr, outcome)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"shards": len(rt.c.Map().Shards),
	})
}

// handleReadyz is the router's load-balancer gate: ready only when the
// prober has seen at least one backend of EVERY shard up (and the
// router is not draining). A router that cannot answer completely is
// still healthy — /healthz says so — but not ready.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case rt.draining.Load():
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
	case !rt.c.Ready():
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "not every shard has an up backend"})
	default:
		rt.writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.c.StatsSnapshot())
}

// handleShardMap serves the live map (GET) and swaps it (PUT). A PUT
// body is the same JSON shape GET serves — version, num_seqs, shards —
// and must pass Coordinator.UpdateMap's checks (valid tiling, same
// database, strictly newer version); on success the installed map is
// echoed back, and every in-flight fan-out finishes against the
// topology it started with.
func (rt *Router) handleShardMap(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPut:
		var m ShardMap
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&m); err != nil {
			rt.writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: server.ErrBadRequest,
				Detail: fmt.Sprintf("decoding shard map: %v", err)})
			return
		}
		if err := rt.c.UpdateMap(&m); err != nil {
			rt.writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: server.ErrBadRequest, Detail: err.Error()})
			return
		}
	default:
		rt.writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: server.ErrBadMethod,
			Detail: "use GET to read the shard map or PUT with a JSON map to replace it"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(rt.c.Map().JSON())
	_, _ = w.Write([]byte("\n"))
}
