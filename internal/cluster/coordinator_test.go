package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/faults"
	"repro/internal/index"
	"repro/internal/server"
)

// testDB builds the deterministic homolog-rich synthetic database the
// cluster tests shard, the same one the server tests use.
func testDB(t testing.TB, n int) *bio.Database {
	t.Helper()
	spec := bio.DefaultDBSpec(n)
	spec.Related = 10
	spec.RelatedTo = bio.GlutathioneQuery()
	return bio.SyntheticDB(spec)
}

// startShard runs one real seqserve backend over db's [lo:hi) slice
// and returns its host:port. This is exactly what `seqserve -shard
// lo:hi` does in production: the slice comes from the same global
// ordering, hit indexes are shard-local.
func startShard(t testing.TB, db *bio.Database, lo, hi int) string {
	t.Helper()
	sliced := bio.NewDatabase(db.Seqs[lo:hi])
	ix := index.Build(sliced, index.Options{})
	s, err := server.New(sliced, ix, server.Config{Workers: 2})
	if err != nil {
		t.Fatalf("shard %d:%d: %v", lo, hi, err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return strings.TrimPrefix(ts.URL, "http://")
}

// fastConfig is the test coordinator baseline: probing off (every
// backend selectable), hedging off, small backoffs so chaos rounds
// finish quickly. Tests override what they exercise.
func fastConfig() Config {
	return Config{
		ProbeInterval: -1,
		HedgeQuantile: -1,
		TryTimeout:    5 * time.Second,
		RetryBaseWait: time.Millisecond,
		RetryMaxWait:  5 * time.Millisecond,
	}
}

func newCoord(t testing.TB, m *ShardMap, cfg Config) *Coordinator {
	t.Helper()
	cfg.Logf = t.Logf
	c, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// shardFleet builds a ShardMap over real backends tiling db with the
// given cut points (e.g. cuts 0,60,120 = shards [0,60) and [60,120)).
func shardFleet(t testing.TB, db *bio.Database, cuts []int) *ShardMap {
	t.Helper()
	m := &ShardMap{Version: 1, NumSeqs: db.NumSeqs()}
	for i := 1; i < len(cuts); i++ {
		lo, hi := cuts[i-1], cuts[i]
		m.Shards = append(m.Shards, Shard{Lo: lo, Hi: hi, Backends: []string{startShard(t, db, lo, hi)}})
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// singleNode asks one full-database backend directly — the reference
// answer sharded serving must reproduce bit for bit.
func singleNode(t testing.TB, addr string, req server.SearchRequest) server.SearchResponse {
	t.Helper()
	body, _ := json.Marshal(&req)
	resp, err := http.Post("http://"+addr+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node status %d", resp.StatusCode)
	}
	return sr
}

// TestShardedBitIdentity is the tentpole property: for every kernel,
// the scatter-gathered top-K over 1, 2 and 4 shards is bit-identical
// to the single-node answer — including with one shard's tries
// delayed through the shard.slow fault site (latency must never
// change WHAT is returned).
func TestShardedBitIdentity(t *testing.T) {
	db := testDB(t, 120)
	full := startShard(t, db, 0, 120)
	queries := []string{
		bio.GlutathioneQuery().String(),
		bio.Decode(db.Seqs[3].Residues),
		bio.Decode(db.Seqs[117].Residues),
	}

	for _, cuts := range [][]int{
		{0, 120},
		{0, 60, 120},
		{0, 30, 60, 90, 120},
	} {
		m := shardFleet(t, db, cuts)
		for _, delayed := range []bool{false, true} {
			cfg := fastConfig()
			if delayed {
				reg := faults.NewRegistry(99)
				reg.Arm(faults.ShardSlow, faults.Fault{Every: 3, Delay: 5 * time.Millisecond})
				cfg.Faults = reg
			}
			c := newCoord(t, m, cfg)
			for qi, q := range queries {
				for _, kernel := range align.KernelNames() {
					req := server.SearchRequest{Query: q, Kernel: kernel, K: 7, Exhaustive: true}
					want := singleNode(t, full, req)
					got, _, aerr := c.Search(context.Background(), &Request{SearchRequest: req})
					if aerr != nil {
						t.Fatalf("shards=%d delayed=%v q%d %s: %s (%s)", len(cuts)-1, delayed, qi, kernel, aerr.code, aerr.detail)
					}
					if !got.Complete || got.ShardsOK != len(cuts)-1 || len(got.ShardsFailed) != 0 {
						t.Fatalf("shards=%d q%d %s: accounting %+v", len(cuts)-1, qi, kernel, got)
					}
					if !reflect.DeepEqual(got.Hits, want.Hits) {
						t.Fatalf("shards=%d delayed=%v q%d %s: hits diverge\n got: %+v\nwant: %+v",
							len(cuts)-1, delayed, qi, kernel, got.Hits, want.Hits)
					}
					if got.Kernel != want.Kernel || got.K != want.K || got.QueryLen != want.QueryLen || got.Exhaustive != want.Exhaustive {
						t.Fatalf("shards=%d q%d %s: metadata diverges: %+v vs %+v", len(cuts)-1, qi, kernel, got, want)
					}
				}
			}
		}
	}
}

// TestPartialResults: a shard dead past its retry budget degrades the
// answer to 200 complete:false with honest accounting — and
// require_complete flips the same situation to 503 shards_failed.
func TestPartialResults(t *testing.T) {
	db := testDB(t, 80)
	m := shardFleet(t, db, []int{0, 40, 80})
	// Kill shard 1's only backend: its address now refuses connections.
	m.Shards[1].Backends[0] = "127.0.0.1:1" // reserved port, guaranteed refused

	cfg := fastConfig()
	cfg.Retries = 1
	cfg.TryTimeout = 500 * time.Millisecond
	c := newCoord(t, m, cfg)

	req := server.SearchRequest{Query: bio.GlutathioneQuery().String(), K: 5, Exhaustive: true}
	got, _, aerr := c.Search(context.Background(), &Request{SearchRequest: req})
	if aerr != nil {
		t.Fatalf("degraded search errored: %s (%s)", aerr.code, aerr.detail)
	}
	if got.Complete || got.ShardsOK != 1 || !reflect.DeepEqual(got.ShardsFailed, []int{1}) {
		t.Fatalf("accounting = complete=%v ok=%d failed=%v", got.Complete, got.ShardsOK, got.ShardsFailed)
	}
	// The partial answer is exactly the live shard's: every hit within
	// [0, 40), still ranked.
	if len(got.Hits) == 0 {
		t.Fatal("partial answer lost the live shard's hits")
	}
	for _, h := range got.Hits {
		if h.Index < 0 || h.Index >= 40 {
			t.Fatalf("partial hit index %d outside the live shard", h.Index)
		}
	}
	if c.m.partials.Value() != 1 {
		t.Fatalf("partials counter = %d, want 1", c.m.partials.Value())
	}

	// require_complete refuses the degraded answer.
	_, _, aerr = c.Search(context.Background(), &Request{SearchRequest: req, RequireComplete: true})
	if aerr == nil || aerr.code != ErrShardsFailed || aerr.status != http.StatusServiceUnavailable {
		t.Fatalf("require_complete: got %+v, want 503 %s", aerr, ErrShardsFailed)
	}
	if aerr.retryAfter <= 0 {
		t.Fatal("shards_failed should carry Retry-After")
	}
}

// TestAllShardsFailed: the extreme of graceful degradation is a 200
// with zero hits and shards_ok 0 — not an invented 5xx.
func TestAllShardsFailed(t *testing.T) {
	m := &ShardMap{Version: 1, NumSeqs: 10, Shards: []Shard{{Lo: 0, Hi: 10, Backends: []string{"127.0.0.1:1"}}}}
	cfg := fastConfig()
	cfg.Retries = 0
	cfg.TryTimeout = 200 * time.Millisecond
	c := newCoord(t, m, cfg)
	got, _, aerr := c.Search(context.Background(), &Request{SearchRequest: server.SearchRequest{Query: "MTDKL", K: 3}})
	if aerr != nil {
		t.Fatalf("errored: %s", aerr.code)
	}
	if got.Complete || got.ShardsOK != 0 || len(got.Hits) != 0 {
		t.Fatalf("got %+v", got)
	}
	if got.K != 3 || got.QueryLen != 5 {
		t.Fatalf("best-effort metadata wrong: %+v", got)
	}
}

// TestFatal4xxPropagates: a request the backends reject (empty query,
// unknown kernel) comes back with the backend's own sentinel, not a
// retry storm — the coordinator must not burn its budget on a request
// that can never succeed.
func TestFatal4xxPropagates(t *testing.T) {
	db := testDB(t, 40)
	m := shardFleet(t, db, []int{0, 40})
	cfg := fastConfig()
	cfg.Retries = 5
	c := newCoord(t, m, cfg)

	for _, tc := range []struct {
		req  server.SearchRequest
		code string
	}{
		{server.SearchRequest{Query: ""}, server.ErrEmptyQuery},
		{server.SearchRequest{Query: "MTDKL", Kernel: "nope"}, server.ErrUnknownKernel},
		{server.SearchRequest{Query: "MTDKL", K: -4}, server.ErrBadK},
	} {
		before := c.m.tries.Value(m.Shards[0].Backends[0])
		_, _, aerr := c.Search(context.Background(), &Request{SearchRequest: tc.req})
		if aerr == nil || aerr.code != tc.code {
			t.Fatalf("req %+v: got %+v, want code %s", tc.req, aerr, tc.code)
		}
		if tries := c.m.tries.Value(m.Shards[0].Backends[0]) - before; tries != 1 {
			t.Fatalf("req %+v: %d tries for a fatal 4xx, want 1", tc.req, tries)
		}
	}
}

// TestChaosFlakyShardsAbsorbed is the deterministic chaos suite: with
// shard.conn and shard.err5xx firing at double-digit rates, retries
// absorb the noise — requests without require_complete NEVER see a
// 5xx, and every complete answer stays bit-identical.
func TestChaosFlakyShardsAbsorbed(t *testing.T) {
	db := testDB(t, 80)
	full := startShard(t, db, 0, 80)
	m := shardFleet(t, db, []int{0, 40, 80})

	reg := faults.NewRegistry(42)
	reg.Arm(faults.ShardConn, faults.Fault{Rate: 0.25})
	reg.Arm(faults.ShardErr5xx, faults.Fault{Rate: 0.15})
	cfg := fastConfig()
	cfg.Faults = reg
	cfg.Retries = 4
	c := newCoord(t, m, cfg)

	req := server.SearchRequest{Query: bio.GlutathioneQuery().String(), K: 5, Exhaustive: true}
	want := singleNode(t, full, req)
	complete := 0
	const rounds = 40
	for i := 0; i < rounds; i++ {
		got, _, aerr := c.Search(context.Background(), &Request{SearchRequest: req})
		if aerr != nil {
			t.Fatalf("round %d: chaos surfaced as an error: %s (%s)", i, aerr.code, aerr.detail)
		}
		if got.Complete {
			complete++
			if !reflect.DeepEqual(got.Hits, want.Hits) {
				t.Fatalf("round %d: complete answer diverges under chaos", i)
			}
		}
	}
	if complete < rounds*8/10 {
		t.Fatalf("only %d/%d rounds complete; retries are not absorbing the configured fault rates", complete, rounds)
	}
	if reg.Fired(faults.ShardConn) == 0 || reg.Fired(faults.ShardErr5xx) == 0 {
		t.Fatalf("chaos sites never fired (conn=%d, err5xx=%d) — the test exercised nothing",
			reg.Fired(faults.ShardConn), reg.Fired(faults.ShardErr5xx))
	}
	t.Logf("chaos: %d/%d complete, conn faults=%d, 5xx faults=%d, retries=%d",
		complete, rounds, reg.Fired(faults.ShardConn), reg.Fired(faults.ShardErr5xx),
		c.m.retries.Value(m.Shards[0].Backends[0])+c.m.retries.Value(m.Shards[1].Backends[0]))
}

// cannedBackend is a fake shard replica: /search answers a fixed
// SearchResponse after an optional delay, /readyz answers a settable
// status. For replica-selection tests where real alignment is noise.
type cannedBackend struct {
	delay   time.Duration
	fail    atomic.Bool
	ready   atomic.Int32
	hits    []server.Hit
	calls   atomic.Int64
	version atomic.Pointer[string] // snapshot_version stamp; nil = unversioned
}

func (cb *cannedBackend) setVersion(v string) { cb.version.Store(&v) }

func startCanned(t testing.TB, cb *cannedBackend) string {
	t.Helper()
	cb.ready.Store(http.StatusOK)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(cb.ready.Load()))
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		cb.calls.Add(1)
		if cb.delay > 0 {
			select {
			case <-time.After(cb.delay):
			case <-r.Context().Done():
				return
			}
		}
		if cb.fail.Load() {
			http.Error(w, "canned failure", http.StatusInternalServerError)
			return
		}
		// Echo the requested K the way a real seqserve does — the
		// coordinator trusts the first shard's meta for the merged topK.
		var req server.SearchRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		k := req.K
		if k <= 0 {
			k = server.DefaultTopK
		}
		sr := server.SearchResponse{
			QueryLen: 5, Kernel: "swar", K: k, Hits: cb.hits,
		}
		if v := cb.version.Load(); v != nil {
			sr.SnapshotVersion = *v
		}
		_ = json.NewEncoder(w).Encode(sr)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

var cannedHits = []server.Hit{{Index: 0, ID: "t0", Len: 5, Score: 9}}

// TestHedgedTryRescuesSlowReplica: a try that outlives the hedge delay
// gets a second try on the other replica; the fast answer wins well
// before the slow one would have finished.
func TestHedgedTryRescuesSlowReplica(t *testing.T) {
	fast := &cannedBackend{hits: cannedHits}
	slow := &cannedBackend{hits: cannedHits, delay: 2 * time.Second}
	fastAddr, slowAddr := startCanned(t, fast), startCanned(t, slow)
	m := &ShardMap{Version: 1, NumSeqs: 10, Shards: []Shard{
		// Rotation starts at next.Add(1)=1: backends[1] (slow) gets the
		// first try, so the hedge is what must save the query.
		{Lo: 0, Hi: 10, Backends: []string{fastAddr, slowAddr}},
	}}
	cfg := fastConfig()
	cfg.HedgeQuantile = DefaultHedgeQuantile // enable hedging
	cfg.HedgeMinWait = 10 * time.Millisecond
	cfg.Retries = 2
	c := newCoord(t, m, cfg)

	start := time.Now()
	got, _, aerr := c.Search(context.Background(), &Request{SearchRequest: server.SearchRequest{Query: "MTDKL", K: 1}})
	if aerr != nil {
		t.Fatalf("hedged search failed: %s", aerr.code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue: took %v (slow replica is 2s)", elapsed)
	}
	if !got.Complete || len(got.Hits) != 1 {
		t.Fatalf("got %+v", got)
	}
	if hedges := c.m.hedges.Value(fastAddr) + c.m.hedges.Value(slowAddr); hedges == 0 {
		t.Fatal("no hedge was recorded")
	}
	if fast.calls.Load() == 0 {
		t.Fatal("the fast replica was never tried")
	}
}

// TestBreakerEjectsFailingReplica: a replica that fails every try
// trips its breaker after the threshold; traffic then flows to the
// healthy replica without burning retries on the broken one.
func TestBreakerEjectsFailingReplica(t *testing.T) {
	good := &cannedBackend{hits: cannedHits}
	bad := &cannedBackend{hits: cannedHits}
	bad.fail.Store(true)
	goodAddr, badAddr := startCanned(t, good), startCanned(t, bad)
	m := &ShardMap{Version: 1, NumSeqs: 10, Shards: []Shard{
		{Lo: 0, Hi: 10, Backends: []string{goodAddr, badAddr}},
	}}
	cfg := fastConfig()
	cfg.Retries = 2
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Minute // stays open for the whole test
	c := newCoord(t, m, cfg)

	req := &Request{SearchRequest: server.SearchRequest{Query: "MTDKL", K: 1}}
	for i := 0; i < 20; i++ {
		got, _, aerr := c.Search(context.Background(), req)
		if aerr != nil || !got.Complete {
			t.Fatalf("round %d: %+v / %+v", i, got, aerr)
		}
	}
	st := c.StatsSnapshot()
	var badRow BackendStatus
	for _, row := range st.Backends {
		if row.Addr == badAddr {
			badRow = row
		}
	}
	if badRow.Breaker != "open" {
		t.Fatalf("bad replica's breaker = %q, want open (%+v)", badRow.Breaker, badRow)
	}
	// Once open, the rotation must stop offering the bad replica first:
	// its try count stays pinned near the threshold while the good one
	// absorbs the rest.
	if badTries := bad.calls.Load(); badTries > int64(cfg.BreakerThreshold)+2 {
		t.Fatalf("bad replica kept receiving tries after its breaker opened: %d", badTries)
	}
	if c.m.failures.Value(badAddr) == 0 {
		t.Fatal("failure counter never moved for the failing replica")
	}
}

// TestHealthProbingGatesReadiness: the prober ejects a backend whose
// /readyz goes dark and recovers it when it comes back; Ready() (the
// router's /readyz) tracks every-shard-has-an-up-backend.
func TestHealthProbingGatesReadiness(t *testing.T) {
	cb := &cannedBackend{hits: cannedHits}
	addr := startCanned(t, cb)
	m := &ShardMap{Version: 1, NumSeqs: 10, Shards: []Shard{{Lo: 0, Hi: 10, Backends: []string{addr}}}}
	cfg := fastConfig()
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.ProbeTimeout = 200 * time.Millisecond
	cfg.EjectAfter = 2
	cfg.RecoverAfter = 1
	c := newCoord(t, m, cfg)

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Ready() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for Ready()==%v (%s)", want, what)
	}
	waitFor(true, "initial probes")
	cb.ready.Store(http.StatusServiceUnavailable)
	waitFor(false, "ejection after consecutive probe failures")
	cb.ready.Store(http.StatusOK)
	waitFor(true, "recovery after probes return")
}

// TestRouterEndpoints drives the full HTTP surface: /search with and
// without require_complete, /readyz, /shardmap, /metrics, and the
// partial-result envelope over the wire.
func TestRouterEndpoints(t *testing.T) {
	db := testDB(t, 80)
	m := shardFleet(t, db, []int{0, 40, 80})
	c := newCoord(t, m, fastConfig())
	rt := httptest.NewServer(NewRouter(c))
	t.Cleanup(rt.Close)

	// A routed search carries the cluster envelope.
	body, _ := json.Marshal(&Request{SearchRequest: server.SearchRequest{Query: bio.GlutathioneQuery().String(), K: 5, Exhaustive: true}})
	resp, err := http.Post(rt.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !got.Complete || got.ShardsOK != 2 || got.ShardMapVersion != 1 {
		t.Fatalf("routed search: status %d, %+v", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id on the routed response")
	}

	// Unknown fields are rejected like the backend does.
	resp, err = http.Post(rt.URL+"/search", "application/json", strings.NewReader(`{"query":"MTDKL","nope":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// /shardmap serves the versioned map.
	resp, err = http.Get(rt.URL + "/shardmap")
	if err != nil {
		t.Fatal(err)
	}
	var sm ShardMap
	if err := json.NewDecoder(resp.Body).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sm.Version != 1 || len(sm.Shards) != 2 || sm.NumSeqs != 80 {
		t.Fatalf("/shardmap = %+v", sm)
	}

	// /metrics exposes the per-backend families.
	resp, err = http.Get(rt.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"router_backend_tries_total{backend=",
		"router_backend_breaker_state{backend=",
		"router_requests_total",
		"router_shard_try_latency_us_count{shard=\"0\"}",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /readyz: probing is disabled in this config, so vacuously ready;
	// draining flips it (and /healthz) to 503.
	for path, wantCode := range map[string]int{"/readyz": 200, "/healthz": 200} {
		resp, err := http.Get(rt.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
}

// TestRouterStream drives the NDJSON fan-out path: valid lines answer
// with the cluster envelope (matching their single-POST twins), bad
// lines answer per-line errors, and the terminal line accounts for
// everything.
func TestRouterStream(t *testing.T) {
	db := testDB(t, 80)
	m := shardFleet(t, db, []int{0, 40, 80})
	c := newCoord(t, m, fastConfig())
	rt := httptest.NewServer(NewRouter(c))
	t.Cleanup(rt.Close)

	q := bio.GlutathioneQuery().String()
	var in bytes.Buffer
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&in, `{"id":"q%d","query":%q,"k":5,"exhaustive":true}`+"\n", i, q)
	}
	in.WriteString("{broken json\n")
	in.WriteString(`{"id":"badk","query":"MTDKL","kernel":"nope"}` + "\n")

	resp, err := http.Post(rt.URL+"/search/stream", "application/x-ndjson", bytes.NewReader(in.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	// The single-POST twin every result line must match bit for bit.
	body, _ := json.Marshal(&Request{SearchRequest: server.SearchRequest{Query: q, K: 5, Exhaustive: true}})
	postResp, err := http.Post(rt.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var want Response
	_ = json.NewDecoder(postResp.Body).Decode(&want)
	postResp.Body.Close()

	type anyLine struct {
		ID       string `json:"id"`
		Error    string `json:"error"`
		Terminal bool   `json:"terminal"`
		Lines    int64  `json:"lines"`
		Results  int64  `json:"results"`
		Errors   int64  `json:"errors"`
		Response
	}
	results, errLines := 0, 0
	var terminal *anyLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line anyLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		switch {
		case line.Terminal:
			terminal = &line
		case line.Error != "":
			errLines++
			if line.ID == "badk" && line.Error != server.ErrUnknownKernel {
				t.Fatalf("badk line error = %s, want %s", line.Error, server.ErrUnknownKernel)
			}
		default:
			results++
			if !line.Complete || line.ShardsOK != 2 {
				t.Fatalf("result line %s lacks the cluster envelope: %+v", line.ID, line)
			}
			if !reflect.DeepEqual(line.Hits, want.Hits) {
				t.Fatalf("stream line %s diverges from its single-POST twin", line.ID)
			}
		}
	}
	if results != 5 || errLines != 2 {
		t.Fatalf("stream saw %d results, %d errors; want 5, 2", results, errLines)
	}
	if terminal == nil || terminal.Lines != 7 || terminal.Results != 5 || terminal.Errors != 2 || terminal.Error != "" {
		t.Fatalf("terminal line = %+v", terminal)
	}
}

// TestRouterDrain: BeginDrain refuses new work with 503/draining on
// every entry point and flips both health endpoints.
func TestRouterDrain(t *testing.T) {
	db := testDB(t, 40)
	m := shardFleet(t, db, []int{0, 40})
	c := newCoord(t, m, fastConfig())
	router := NewRouter(c)
	rt := httptest.NewServer(router)
	t.Cleanup(rt.Close)

	router.BeginDrain()
	for _, path := range []string{"/search", "/search/stream"} {
		resp, err := http.Post(rt.URL+path, "application/json", strings.NewReader(`{"query":"MTDKL"}`))
		if err != nil {
			t.Fatal(err)
		}
		var e server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || e.Error != server.ErrDraining {
			t.Fatalf("%s during drain: %d %s", path, resp.StatusCode, e.Error)
		}
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(rt.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestDeadlinePropagates: a routed request that cannot finish inside
// its deadline fails with the backend-identical 408 sentinel.
func TestDeadlinePropagates(t *testing.T) {
	slow := &cannedBackend{hits: cannedHits, delay: 2 * time.Second}
	addr := startCanned(t, slow)
	m := &ShardMap{Version: 1, NumSeqs: 10, Shards: []Shard{{Lo: 0, Hi: 10, Backends: []string{addr}}}}
	cfg := fastConfig()
	cfg.Retries = 0
	c := newCoord(t, m, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, aerr := c.Search(ctx, &Request{SearchRequest: server.SearchRequest{Query: "MTDKL", K: 1}})
	if aerr == nil || aerr.code != server.ErrDeadline || aerr.status != http.StatusRequestTimeout {
		t.Fatalf("got %+v, want 408 %s", aerr, server.ErrDeadline)
	}
}
