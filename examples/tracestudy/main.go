// Tracestudy: generate the instruction traces of a scalar and a SIMD
// Smith-Waterman kernel over the same input, compare their instruction
// mixes (the paper's Figure 1), and show a decoded window of each —
// demonstrating the trace substrate that feeds the simulator.
package main

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	spec := workloads.PaperSpec(4)
	for _, name := range []string{"ssearch34", "sw_vmx128"} {
		w, err := workloads.New(name, spec)
		if err != nil {
			panic(err)
		}
		var cs trace.CountingSink
		var rec trace.Recorder
		w.Trace(trace.TeeSink{&cs, &trace.LimitSink{Inner: &rec, Limit: 1 << 62}})

		fmt.Printf("=== %s: %d instructions ===\n", name, cs.Total)
		bd := cs.Breakdown()
		for c := isa.Breakdown(0); c < isa.NumBreakdowns; c++ {
			if bd[c] > 0 {
				fmt.Printf("  %-8v %6.2f%%\n", c, 100*float64(bd[c])/float64(cs.Total))
			}
		}
		// Show a steady-state window (skip the setup prologue).
		fmt.Println("  steady-state window:")
		start := len(rec.Insts) / 2
		for _, in := range rec.Insts[start : start+12] {
			fmt.Println("   ", in)
		}
		fmt.Println()
	}
	fmt.Println("Note the contrast the paper builds on: the scalar kernel is")
	fmt.Println("~25% branches with data-dependent outcomes; the SIMD kernel is")
	fmt.Println("almost branch-free and lives on the vector units.")
}
