// Proteinsearch: search a synthetic protein family database with the
// rigorous tools, the heuristic tools, and the k-mer seed index, and
// compare their sensitivity — the speed/sensitivity trade-off that
// motivates the paper, now including our own seed-and-extend pipeline
// (exact kernel rescoring behind an index filter).
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/fasta"
	"repro/internal/index"
)

func main() {
	query := bio.GlutathioneQuery()
	spec := bio.DefaultDBSpec(300)
	spec.Related = 20
	spec.RelatedTo = query
	db := bio.SyntheticDB(spec)
	fmt.Printf("query %s (%d aa) vs %d sequences (%d residues), 20 planted homologs\n\n",
		query.ID, query.Len(), db.NumSeqs(), db.TotalResidues())

	isHomolog := func(s *bio.Sequence) bool {
		return strings.Contains(s.Desc, "homolog")
	}

	// Rigorous search: Smith-Waterman over every sequence, sharded
	// across all CPUs by the parallel scan harness (identical hits at
	// any worker count).
	params := align.PaperParams()
	start := time.Now()
	swHits := align.SearchDB(params, query.Residues, db, align.SearchConfig{
		Kernel:   align.KernelSSEARCH,
		MinScore: 70,
	})
	swTime := time.Since(start)

	// The same rigorous scan on the SWAR multi-lane kernel: identical
	// hits (the kernels agree score-for-score), several times the
	// cell rate.
	start = time.Now()
	swarHits := align.SearchDB(params, query.Residues, db, align.SearchConfig{
		Kernel:   align.KernelSWAR,
		MinScore: 70,
	})
	swarTime := time.Since(start)

	// Seed-and-extend: the k-mer index proposes candidates and the
	// SWAR kernel rescores only those — the fastest exact kernel
	// behind the cheapest candidate filter. Index construction is paid
	// once per database, so it is timed separately from the query.
	buildStart := time.Now()
	ix := index.Build(db, index.Options{})
	buildTime := time.Since(buildStart)
	searcher := index.NewSearcher(ix, db, params, index.SearchOptions{})
	start = time.Now()
	idxHits := searcher.Search(query.Residues, align.SearchConfig{
		Kernel:   align.KernelSWAR,
		MinScore: 70,
	})
	idxTime := time.Since(start)

	// Heuristic searches.
	start = time.Now()
	blastHits, bstats := blast.Search(db, query, blast.DefaultParams())
	blastTime := time.Since(start)
	start = time.Now()
	fastaHits, _ := fasta.Search(db, query, fasta.DefaultParams())
	fastaTime := time.Since(start)

	found := func(pred func(*bio.Sequence) bool, seqs []*bio.Sequence) int {
		n := 0
		for _, s := range seqs {
			if pred(s) {
				n++
			}
		}
		return n
	}
	var swSeqs, swarSeqs, ixSeqs, blSeqs, faSeqs []*bio.Sequence
	for _, h := range swHits {
		swSeqs = append(swSeqs, h.Seq)
	}
	for _, h := range swarHits {
		swarSeqs = append(swarSeqs, h.Seq)
	}
	for _, h := range idxHits {
		ixSeqs = append(ixSeqs, h.Seq)
	}
	for _, h := range blastHits {
		blSeqs = append(blSeqs, h.Seq)
	}
	for _, h := range fastaHits {
		if h.Opt >= 70 {
			faSeqs = append(faSeqs, h.Seq)
		}
	}

	fmt.Printf("%-10s %10s %12s %16s\n", "method", "time", "hits>=70", "homologs found")
	fmt.Printf("%-10s %10v %12d %13d/20\n", "ssearch", swTime.Round(time.Millisecond), len(swSeqs), found(isHomolog, swSeqs))
	fmt.Printf("%-10s %10v %12d %13d/20\n", "swar", swarTime.Round(time.Millisecond), len(swarSeqs), found(isHomolog, swarSeqs))
	fmt.Printf("%-10s %10v %12d %13d/20\n", "indexed", idxTime.Round(time.Millisecond), len(ixSeqs), found(isHomolog, ixSeqs))
	fmt.Printf("%-10s %10v %12d %13d/20\n", "blast", blastTime.Round(time.Millisecond), len(blSeqs), found(isHomolog, blSeqs))
	fmt.Printf("%-10s %10v %12d %13d/20\n", "fasta", fastaTime.Round(time.Millisecond), len(faSeqs), found(isHomolog, faSeqs))
	fmt.Printf("\nindexed search: index built in %v (%.1f MiB, reusable across queries), query %.1fx faster than exact\n",
		buildTime.Round(time.Millisecond), float64(ix.Stats().FootprintBytes)/(1<<20),
		float64(swTime)/float64(idxTime))
	fmt.Printf("blast work: %d word hits -> %d seeds -> %d gapped extensions\n",
		bstats.WordHits, bstats.SeedsExtended, bstats.GappedExtensions)

	fmt.Println("\ntop 5 by rigorous score:")
	for i, h := range swHits {
		if i == 5 {
			break
		}
		marker := ""
		if isHomolog(h.Seq) {
			marker = "  <- planted homolog"
		}
		fmt.Printf("  %d. %-10s score %4d%s\n", i+1, h.Seq.ID, h.Score, marker)
	}
}
