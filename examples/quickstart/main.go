// Quickstart: align two protein sequences with the library's
// reference Smith-Waterman and print the classic three-line view —
// the paper's own introduction example.
package main

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/bio"
)

func main() {
	// The sequences from the paper's introduction.
	a := bio.NewSequence("A", "", "CSTTPGGG")
	b := bio.NewSequence("B", "", "CSDTNGLAWGG")

	params := align.PaperParams() // BLOSUM62, gap open 10 / extend 1

	// Local alignment with full traceback.
	al := align.SWAlign(params, a.Residues, b.Residues)
	fmt.Printf("local (Smith-Waterman) score %d, %d columns, %.0f%% identity\n",
		al.Score, al.AlignedLen(), 100*al.Identity)
	fmt.Println(al.Format(a.Residues, b.Residues))

	// Global alignment of the same pair for contrast.
	gl := align.NWAlign(params, a.Residues, b.Residues)
	fmt.Printf("\nglobal (Needleman-Wunsch) score %d\n", gl.Score)
	fmt.Println(gl.Format(a.Residues, b.Residues))

	// Every implementation in the library computes the same local
	// score: the scalar SWAT kernel and both emulated-Altivec kernels.
	prof := align.NewProfile(a.Residues, params)
	fmt.Printf("\nscore agreement: reference=%d ssearch=%d vmx128=%d vmx256=%d\n",
		align.SWScore(params, a.Residues, b.Residues),
		align.SSEARCHScore(prof, b.Residues),
		align.SWScoreVMX128(prof, b.Residues),
		align.SWScoreVMX256(prof, b.Residues))
}
