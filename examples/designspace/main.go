// Designspace: use the cycle-accurate processor model to explore a
// design decision the paper studies — how large the L1 data cache must
// be for BLAST versus SSEARCH (Figure 5's question) — and print the
// resulting miss-rate/IPC table.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/uarch"
)

func main() {
	lab := experiments.NewLab(experiments.Scale{Seqs: 10, TraceCap: 300_000})
	apps := []string{"blast", "ssearch34"}
	sizes := []int{4, 16, 32, 128, 512}

	fmt.Println("DL1 size sweep on the 4-way machine (2M L2):")
	fmt.Printf("%-8s", "size")
	for _, app := range apps {
		fmt.Printf("%24s", app)
	}
	fmt.Println()
	for _, kb := range sizes {
		fmt.Printf("%-8s", fmt.Sprintf("%dK", kb))
		for _, app := range apps {
			cfg := uarch.Config4Way()
			cfg.Mem.DL1.SizeBytes = kb << 10
			cfg.Mem.L2.SizeBytes = 2 << 20
			res := lab.Simulate(app, cfg)
			fmt.Printf("   miss %5.2f%% IPC %5.2f", 100*res.DL1MissRate, res.IPC)
		}
		fmt.Println()
	}
	fmt.Println("\nThe shape to notice (paper Figure 5): BLAST's lookup structures")
	fmt.Println("need hundreds of KB, while SSEARCH's working set fits almost anywhere.")
}
