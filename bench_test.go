// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating its rows/series and reporting its headline numbers as
// custom metrics), plus kernel throughput benchmarks and the ablations
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/experiments"
	"repro/internal/fasta"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/uarch/bpred"
	"repro/internal/workloads"
)

// benchLab is shared across figure benchmarks so trace generation is
// paid once; simulation work dominates each figure's cost.
var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Scale{Seqs: 10, TraceCap: 250_000})
	})
	return benchLab
}

// --- Tables and figures (E0-E12 in DESIGN.md's index) ---

func BenchmarkTableIII_TraceSizes(b *testing.B) {
	l := lab()
	var r *experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableIII(l)
	}
	b.ReportMetric(r.Ratio("ssearch34", "sw_vmx128"), "ssearch/vmx128")
	b.ReportMetric(r.Ratio("sw_vmx256", "sw_vmx128"), "vmx256/vmx128")
}

func BenchmarkFig1_InstructionBreakdown(b *testing.B) {
	l := lab()
	var r *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1(l)
	}
	b.ReportMetric(100*r.Fraction("ssearch34", isa.BkCtrl), "ssearch-ctrl-%")
	b.ReportMetric(100*r.Fraction("sw_vmx128", isa.BkCtrl), "vmx128-ctrl-%")
}

func BenchmarkFig2_Traumas(b *testing.B) {
	l := lab()
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(l)
	}
	ss := r.Traumas("ssearch34")
	b.ReportMetric(float64(ss[uarch.IfPred]), "ssearch-if_pred-cycles")
	v := r.Traumas("sw_vmx128")
	b.ReportMetric(float64(v[uarch.RgVi]), "vmx128-rg_vi-cycles")
}

func BenchmarkFig3And4_CyclesAndIPCvsMemory(b *testing.B) {
	l := lab()
	var g *experiments.FigMemGrid
	for i := 0; i < b.N; i++ {
		g = experiments.Fig3And4(l)
	}
	b.ReportMetric(g.IPC["blast"][4]["INF/INF/INF"], "blast-IPC-meinf")
	b.ReportMetric(g.IPC["blast"][4]["32k/32k/1M"], "blast-IPC-me1")
}

func BenchmarkFig5_CacheSize(b *testing.B) {
	l := lab()
	var f *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig5(l)
	}
	b.ReportMetric(100*f.MissRate["blast"][32], "blast-missrate-32K-%")
	b.ReportMetric(100*f.MissRate["ssearch34"][32], "ssearch-missrate-32K-%")
}

func BenchmarkFig6_Associativity(b *testing.B) {
	l := lab()
	var f *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig6(l)
	}
	b.ReportMetric(100*f.MissRate["blast"][1], "blast-missrate-1way-%")
	b.ReportMetric(100*f.MissRate["blast"][8], "blast-missrate-8way-%")
}

func BenchmarkFig7_L1Latency(b *testing.B) {
	l := lab()
	var f *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig7(l)
	}
	b.ReportMetric(f.IPC["sw_vmx128"][1], "vmx128-IPC-lat1")
	b.ReportMetric(f.IPC["sw_vmx128"][10], "vmx128-IPC-lat10")
}

func BenchmarkFig8_WideSIMD(b *testing.B) {
	l := lab()
	var f *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig8(l)
	}
	b.ReportMetric(f.Speedup["sw_vmx256"][4], "vmx256-speedup-4W")
	b.ReportMetric(f.Speedup["sw_vmx256"][16], "vmx256-speedup-16W")
	b.ReportMetric(f.Speedup["sw_vmx256+1lat"][4], "vmx256+1lat-speedup-4W")
}

func BenchmarkFig9_BranchImpact(b *testing.B) {
	l := lab()
	var f *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig9(l)
	}
	b.ReportMetric(f.Perfect["ssearch34"][4]/f.Real["ssearch34"][4], "ssearch-perfectBP-gain")
	b.ReportMetric(f.Perfect["sw_vmx128"][4]/f.Real["sw_vmx128"][4], "vmx128-perfectBP-gain")
}

func BenchmarkFig10_QueueUtilization(b *testing.B) {
	l := lab()
	var f *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig10(l)
	}
	b.ReportMetric(f.MeanQueueOcc("sw_vmx128", uarch.UVi), "vmx128-VI-occupancy")
	b.ReportMetric(f.MeanInflight("fasta34"), "fasta-inflight")
}

func BenchmarkFig11_PredictorAccuracy(b *testing.B) {
	l := lab()
	var f *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig11(l)
	}
	b.ReportMetric(100*f.Accuracy["ssearch34"]["gp"][16384], "ssearch-GP-accuracy-%")
	b.ReportMetric(100*f.Accuracy["blast"]["gp"][16384], "blast-GP-accuracy-%")
}

// --- Kernel throughput (cells/second of dynamic programming) ---

func kernelInput() (*align.Profile, []uint8, align.Params) {
	p := align.PaperParams()
	q := bio.GlutathioneQuery()
	subject := bio.RandomSequence("S", 360, 99)
	return align.NewProfile(q.Residues, p), subject.Residues, p
}

// reportCellRate attaches the DP throughput metrics (Mcells/s and
// GCUPS — giga cell updates per second, the field's standard figure)
// to a kernel benchmark.
func reportCellRate(b *testing.B, cells float64) {
	rate := cells * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(rate/1e6, "Mcells/s")
	b.ReportMetric(rate/1e9, "GCUPS")
}

func BenchmarkKernelSWScore(b *testing.B) {
	prof, subject, p := kernelInput()
	cells := float64(len(prof.Query) * len(subject))
	scr := align.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.SWScore(p, prof.Query, subject)
	}
	reportCellRate(b, cells)
}

func BenchmarkKernelSSEARCH(b *testing.B) {
	prof, subject, _ := kernelInput()
	cells := float64(len(prof.Query) * len(subject))
	scr := align.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.SSEARCHScore(prof, subject)
	}
	reportCellRate(b, cells)
}

func BenchmarkKernelVMX128(b *testing.B) {
	prof, subject, _ := kernelInput()
	cells := float64(len(prof.Query) * len(subject))
	scr := align.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.SWScoreVMX128(prof, subject)
	}
	reportCellRate(b, cells)
}

func BenchmarkKernelVMX256(b *testing.B) {
	prof, subject, _ := kernelInput()
	cells := float64(len(prof.Query) * len(subject))
	scr := align.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.SWScoreVMX256(prof, subject)
	}
	reportCellRate(b, cells)
}

func BenchmarkKernelSWAR(b *testing.B) {
	p := align.PaperParams()
	q := bio.GlutathioneQuery()
	subject := bio.RandomSequence("S", 360, 99).Residues
	sp := align.NewSWARProfile(q.Residues, p)
	cells := float64(q.Len() * len(subject))
	scr := align.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.SWScoreSWAR(sp, subject)
	}
	reportCellRate(b, cells)
}

func BenchmarkKernelStriped(b *testing.B) {
	p := align.PaperParams()
	q := bio.GlutathioneQuery()
	subject := bio.RandomSequence("S", 360, 99).Residues
	sp := align.NewStripedProfile(q.Residues, p, 8)
	cells := float64(q.Len() * len(subject))
	scr := align.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.SWScoreStriped(sp, subject)
	}
	reportCellRate(b, cells)
}

// BenchmarkSearchDB measures the parallel sharded scan end to end:
// the same database scored with 1..N workers. Hits are bit-identical
// across worker counts (equiv tests assert it); this shows the
// wall-clock scaling.
func BenchmarkSearchDB(b *testing.B) {
	q := bio.GlutathioneQuery()
	spec := bio.DefaultDBSpec(200)
	spec.Related = 10
	spec.RelatedTo = q
	db := bio.SyntheticDB(spec)
	p := align.PaperParams()
	cells := float64(q.Len() * db.TotalResidues())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ssearch-w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				align.SearchDB(p, q.Residues, db, align.SearchConfig{
					Kernel: align.KernelSSEARCH, Workers: workers, TopK: 20,
				})
			}
			reportCellRate(b, cells)
		})
	}
	b.Run("vmx128-w4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			align.SearchDB(p, q.Residues, db, align.SearchConfig{
				Kernel: align.KernelVMX128, Workers: 4, TopK: 20,
			})
		}
		reportCellRate(b, cells)
	})
}

func searchDB() (*bio.Database, *bio.Sequence) {
	q := bio.GlutathioneQuery()
	spec := bio.DefaultDBSpec(60)
	spec.Related = 6
	spec.RelatedTo = q
	return bio.SyntheticDB(spec), q
}

func BenchmarkSearchBLAST(b *testing.B) {
	db, q := searchDB()
	p := blast.DefaultParams()
	b.ResetTimer()
	var stats blast.SearchStats
	for i := 0; i < b.N; i++ {
		_, stats = blast.Search(db, q, p)
	}
	b.ReportMetric(float64(stats.WordHits), "word-hits")
}

func BenchmarkSearchFASTA(b *testing.B) {
	db, q := searchDB()
	p := fasta.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fasta.Search(db, q, p)
	}
}

// --- Simulator throughput ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	r := lab().Trace("ssearch34")
	b.ResetTimer()
	var res *uarch.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = uarch.New(uarch.Config4Way()).Run(r.Source())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Retired)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationTwoHit quantifies what the two-hit rule buys: the
// extension work with and without it.
func BenchmarkAblationTwoHit(b *testing.B) {
	db, q := searchDB()
	for _, twoHit := range []bool{true, false} {
		name := "two-hit"
		if !twoHit {
			name = "one-hit"
		}
		b.Run(name, func(b *testing.B) {
			p := blast.DefaultParams()
			p.TwoHit = twoHit
			var stats blast.SearchStats
			for i := 0; i < b.N; i++ {
				_, stats = blast.Search(db, q, p)
			}
			b.ReportMetric(float64(stats.SeedsExtended), "seeds")
		})
	}
}

// BenchmarkAblationSWAT compares the computation-avoiding SWAT kernel
// against the branch-free Gotoh loop: the paper attributes SSEARCH's
// branch-boundness to exactly this optimization.
func BenchmarkAblationSWAT(b *testing.B) {
	prof, subject, _ := kernelInput()
	b.Run("swat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.SSEARCHScore(prof, subject)
		}
	})
	b.Run("gotoh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.GotohScore(prof, subject)
		}
	})
}

// BenchmarkAblationLaneWidth sweeps the anti-diagonal kernel across
// register widths beyond the paper's two design points.
func BenchmarkAblationLaneWidth(b *testing.B) {
	prof, subject, _ := kernelInput()
	for _, lanes := range []int{4, 8, 16, 32} {
		b.Run(map[int]string{4: "64bit", 8: "128bit", 16: "256bit", 32: "512bit"}[lanes],
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					align.SWScoreSIMD(prof, subject, lanes)
				}
			})
	}
}

// BenchmarkAblationSeedThreshold sweeps BLAST's neighborhood threshold
// T, the knob trading index size (memory pressure) for seed rate.
func BenchmarkAblationSeedThreshold(b *testing.B) {
	q := bio.GlutathioneQuery()
	for _, T := range []int{10, 11, 12, 13} {
		b.Run(map[int]string{10: "T10", 11: "T11", 12: "T12", 13: "T13"}[T],
			func(b *testing.B) {
				p := blast.DefaultParams()
				p.Threshold = T
				var idx *blast.Index
				for i := 0; i < b.N; i++ {
					idx = blast.NewIndex(q.Residues, p)
				}
				b.ReportMetric(float64(idx.FootprintBytes())/1024, "KB")
				b.ReportMetric(float64(idx.NumEntries()), "entries")
			})
	}
}

// BenchmarkTraceGeneration measures the substrate itself: pseudo-
// assembly emission rate of the heaviest kernel.
func BenchmarkTraceGeneration(b *testing.B) {
	spec := workloads.PaperSpec(4)
	w, err := workloads.New("ssearch34", spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cs trace.CountingSink
	for i := 0; i < b.N; i++ {
		cs = trace.CountingSink{}
		w.Trace(&cs)
	}
	b.ReportMetric(float64(cs.Total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkPredictors measures raw predictor throughput on a mixed
// branch stream (supports Figure 11's sweep).
func BenchmarkPredictors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	pcs := make([]uint32, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = uint32(0x1000 + 4*(i%509))
		outs[i] = rng.Intn(3) > 0
	}
	for _, strat := range []string{"bimodal", "gshare", "gp"} {
		b.Run(strat, func(b *testing.B) {
			p, err := bpredNew(strat, 4096)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				pc := pcs[i%n]
				p.Update(pc, outs[i%n])
				_ = p.Predict(pc)
			}
		})
	}
}

// bpredNew keeps the bpred import local to the predictor benchmark.
func bpredNew(strategy string, entries int) (bpred.Predictor, error) {
	return bpred.New(strategy, entries)
}

// BenchmarkAblationSIMDLayout compares the two SIMD dataflow layouts
// the 2000s implementations chose between: the paper's anti-diagonal
// (Wozniak) kernel versus the striped (Farrar) layout with lazy-F.
func BenchmarkAblationSIMDLayout(b *testing.B) {
	p := align.PaperParams()
	q := bio.GlutathioneQuery()
	subject := bio.RandomSequence("S", 360, 99).Residues
	cells := float64(q.Len() * len(subject))
	b.Run("antidiagonal", func(b *testing.B) {
		prof := align.NewProfile(q.Residues, p)
		for i := 0; i < b.N; i++ {
			align.SWScoreVMX128(prof, subject)
		}
		b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	})
	b.Run("striped", func(b *testing.B) {
		sp := align.NewStripedProfile(q.Residues, p, 8)
		for i := 0; i < b.N; i++ {
			align.SWScoreStriped(sp, subject)
		}
		b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	})
}

// BenchmarkAblationAccounting compares the two trauma attribution
// policies on the same trace: zero-retire-only (the default,
// Moreno-style) versus charging every cycle.
func BenchmarkAblationAccounting(b *testing.B) {
	r := lab().Trace("blast")
	for _, policy := range []uarch.AccountingPolicy{uarch.AccountZeroRetire, uarch.AccountEveryCycle} {
		name := "zero-retire"
		if policy == uarch.AccountEveryCycle {
			name = "every-cycle"
		}
		b.Run(name, func(b *testing.B) {
			var res *uarch.Result
			for i := 0; i < b.N; i++ {
				cfg := uarch.Config4Way()
				cfg.Accounting = policy
				var err error
				res, err = uarch.New(cfg).Run(r.Source())
				if err != nil {
					b.Fatal(err)
				}
			}
			var total uint64
			for _, n := range res.Traumas {
				total += n
			}
			b.ReportMetric(100*float64(total)/float64(res.Cycles), "charged-%")
		})
	}
}

// BenchmarkQuerySweep extends the evaluation across the full Table II
// query set (the paper ran all queries but reported one).
func BenchmarkQuerySweep(b *testing.B) {
	var s *experiments.QuerySweepResult
	for i := 0; i < b.N; i++ {
		s = experiments.QuerySweep(experiments.Scale{Seqs: 3, TraceCap: 60_000})
	}
	b.ReportMetric(float64(s.Instr["P03435"]["ssearch34"])/float64(s.Instr["P02232"]["ssearch34"]),
		"longest/shortest-query-work")
}
