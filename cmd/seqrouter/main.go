// Command seqrouter is the scatter-gather coordinator over a fleet of
// seqserve shards: it owns the shard map, fans every /search and
// /search/stream query out to the shard backends, merges the per-shard
// top-Ks into the single-node answer (bit-identical when every shard
// responds), and degrades gracefully — retries with backoff, hedged
// tries, circuit breakers, health-gated selection, and partial results
// with complete:false accounting — when shards misbehave.
//
// Usage:
//
//	seqserve -db synthetic:300 -shard 0:100   -addr :8061 &
//	seqserve -db synthetic:300 -shard 100:200 -addr :8062 &
//	seqserve -db synthetic:300 -shard 200:300 -addr :8063 &
//	seqrouter -backends '0:100@127.0.0.1:8061;100:200@127.0.0.1:8062;200:300@127.0.0.1:8063' -addr :8060
//	curl -s -d '{"query":"MTDKL...","k":5}' localhost:8060/search
//	curl -s localhost:8060/statsz
//
// The endpoint surface matches seqserve (plus GET /shardmap to read
// the serving map and PUT /shardmap to rebalance it live, without
// dropping in-flight fan-outs), so seqclient and the load harness
// point at a router unchanged.
// DESIGN.md's "Sharded serving & failure handling" section documents
// the architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
)

func main() {
	var (
		backends = flag.String("backends", "",
			"shard map: lo:hi@addr[,addr...][;lo:hi@addr...] — contiguous global target ranges, each with one or more replica backends (required)")
		mapVersion = flag.Int64("map-version", 1, "shard map version stamped into every response and /shardmap")
		addr       = flag.String("addr", ":8060", "listen address")

		tryTimeout = flag.Duration("try-timeout", cluster.DefaultTryTimeout, "per-backend-try timeout")
		retries    = flag.Int("retries", cluster.DefaultRetries,
			"per-shard budget of extra tries beyond the first (backoff retries and hedges both draw from it; negative disables)")
		retryBase = flag.Duration("retry-base-wait", cluster.DefaultRetryBaseWait, "base of the exponential retry backoff (full jitter)")
		retryMax  = flag.Duration("retry-max-wait", cluster.DefaultRetryMaxWait, "cap on one retry backoff wait")
		hedgeQ    = flag.Float64("hedge-quantile", cluster.DefaultHedgeQuantile,
			"shard latency quantile a try must outlive before a hedged second try launches (negative disables hedging)")
		hedgeMin = flag.Duration("hedge-min-wait", cluster.DefaultHedgeMinWait, "floor on the hedge delay")
		probeIvl = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "backend health probe period (negative disables probing)")
		probeTO  = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "per-probe timeout")
		eject    = flag.Int("eject-after", cluster.DefaultEjectAfter, "consecutive failed probes before a backend is ejected")
		recover_ = flag.Int("recover-after", cluster.DefaultRecoverAfter, "consecutive successful probes before an ejected backend returns")
		brkTrip  = flag.Int("breaker-threshold", cluster.DefaultBreakerTrip, "consecutive failed tries that trip a backend's circuit breaker (negative disables)")
		brkCool  = flag.Duration("breaker-cooldown", cluster.DefaultBreakerCool, "how long a tripped breaker stays open before its half-open trial")
		reqTO    = flag.Duration("request-timeout", 0, "cap on every routed request's deadline (0 = none)")
		verSkew  = flag.String("version-skew", cluster.VersionSkewAllow,
			"what to do when shards answer one query from different snapshot versions mid rolling reload: 'allow' merges and reports the mix in snapshot_versions; 'fence' drops disagreeing shards (complete:false, shards_skewed) and turns require_complete into 503 versions_skewed")
		streamWin  = flag.Int("stream-window", cluster.DefaultStreamWindow, "per-connection /search/stream fan-out window")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")
		drainGrace = flag.Duration("drain-grace", 0,
			"after SIGTERM, keep answering with 503/draining this long before closing the listener")

		faultsSpec = flag.String("faults", "",
			"deterministic fault injection spec, site:key=val,...[;site:...] (sites: "+faults.SiteList()+") — chaos testing only")
		faultsSeed = flag.Uint64("faults-seed", 1, "seed for -faults rate schedules")
		debugAddr  = flag.String("debug-addr", "",
			"serve net/http/pprof plus /metrics and /debug/traces on this separate address; empty disables the debug listener")
		traceRing = flag.Int("trace-ring", 0, "per-request trace ring capacity behind /debug/traces (0 = default)")
	)
	flag.Parse()

	if *backends == "" {
		fatal(fmt.Errorf("-backends is required (e.g. '0:100@127.0.0.1:8061;100:200@127.0.0.1:8062')"))
	}
	smap, err := cluster.ParseShardMap(*backends, *mapVersion)
	if err != nil {
		fatal(err)
	}
	reg, err := faults.ParseSpec(*faultsSpec, *faultsSeed)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		fmt.Printf("seqrouter: FAULT INJECTION ARMED: %s (seed %d)\n", *faultsSpec, *faultsSeed)
	}

	coord, err := cluster.New(smap, cluster.Config{
		TryTimeout:       *tryTimeout,
		Retries:          *retries,
		RetryBaseWait:    *retryBase,
		RetryMaxWait:     *retryMax,
		HedgeQuantile:    *hedgeQ,
		HedgeMinWait:     *hedgeMin,
		ProbeInterval:    *probeIvl,
		ProbeTimeout:     *probeTO,
		EjectAfter:       *eject,
		RecoverAfter:     *recover_,
		BreakerThreshold: *brkTrip,
		BreakerCooldown:  *brkCool,
		RequestTimeout:   *reqTO,
		VersionSkew:      *verSkew,
		StreamWindow:     *streamWin,
		Faults:           reg,
		TraceRing:        *traceRing,
	})
	if err != nil {
		fatal(err)
	}
	router := cluster.NewRouter(coord)

	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", coord.Registry().Handler())
		dmux.Handle("/debug/traces", coord.Ring())
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(fmt.Errorf("debug listener: %w", err))
			}
		}()
		fmt.Printf("seqrouter: debug listener (pprof, /metrics, /debug/traces) on %s\n", *debugAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("seqrouter: routing %d sequences over %d shards (%d backends) on %s\n",
		smap.NumSeqs, len(smap.Shards), smap.NumBackends(), *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("seqrouter: %v, draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Same drain choreography as seqserve: refuse new work with
	// 503/draining (readyz goes unhealthy too), optionally keep the
	// listener up so balancers observe the drain, then stop accepting
	// and wait for in-flight fan-outs.
	router.BeginDrain()
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain timed out after %v: %w", *drainWait, err))
	}
	coord.Close()

	st := coord.StatsSnapshot()
	fmt.Printf("seqrouter: drained: %d requests, %d errors, %d partial responses\n",
		st.Requests, st.Errors, st.Partials)
	for _, b := range st.Backends {
		fmt.Printf("seqrouter: backend %s\n", b.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqrouter:", err)
	os.Exit(1)
}
