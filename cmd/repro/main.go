// Command repro regenerates every table and figure of the paper's
// evaluation section at a configurable scale and writes the full
// report. This is the one-command reproduction entry point.
//
// Usage:
//
//	repro                      # default scale, report to stdout
//	repro -seqs 48 -cap 4000000 -o report.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		seqs    = flag.Int("seqs", 24, "database sequences")
		cap     = flag.Uint64("cap", 2_000_000, "simulated trace window per workload")
		out     = flag.String("o", "-", "output path ('-' for stdout)")
		queries = flag.Bool("queries", false, "also sweep all Table II queries (slower)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	lab := experiments.NewLab(experiments.Scale{Seqs: *seqs, TraceCap: *cap})
	start := time.Now()
	err := experiments.RunAll(lab, w, func(name string) {
		fmt.Fprintf(os.Stderr, "[%7.1fs] running %s...\n", time.Since(start).Seconds(), name)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *queries {
		fmt.Fprintf(os.Stderr, "[%7.1fs] running query sweep...\n", time.Since(start).Seconds())
		sweep := experiments.QuerySweep(experiments.Scale{Seqs: *seqs / 4, TraceCap: *cap / 4})
		fmt.Fprintln(w, sweep.Render())
	}
	fmt.Fprintf(os.Stderr, "repro: done in %v\n", time.Since(start).Round(time.Second))
}
