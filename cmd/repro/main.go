// Command repro regenerates every table and figure of the paper's
// evaluation section at a configurable scale and writes the full
// report. This is the one-command reproduction entry point. Sweeps
// fan out across -workers cores with bit-identical results at any
// worker count; -spill pages captured traces through disk so the
// scale is bounded by disk, not RAM.
//
// Usage:
//
//	repro                      # default scale, report to stdout
//	repro -seqs 48 -cap 4000000 -workers 8 -o report.txt
//	repro -seqs 96 -cap 0 -spill /tmp/traces
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		seqs     = flag.Int("seqs", 24, "database sequences")
		traceCap = flag.Uint64("cap", 2_000_000, "simulated trace window per workload (0 = all)")
		out      = flag.String("o", "-", "output path ('-' for stdout)")
		workers  = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		spill    = flag.String("spill", "", "spill captured traces to files in this directory instead of RAM")
		queries  = flag.Bool("queries", false, "also sweep all Table II queries (slower)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *spill != "" {
		if err := os.MkdirAll(*spill, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
	lab := experiments.NewLab(experiments.Scale{Seqs: *seqs, TraceCap: *traceCap})
	lab.Workers = *workers
	lab.SpillDir = *spill
	defer lab.Close()
	start := time.Now()
	err := experiments.RunAll(lab, w, func(name string) {
		fmt.Fprintf(os.Stderr, "[%7.1fs] running %s...\n", time.Since(start).Seconds(), name)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	if *queries {
		fmt.Fprintf(os.Stderr, "[%7.1fs] running query sweep...\n", time.Since(start).Seconds())
		sweep := experiments.QuerySweep(experiments.Scale{Seqs: *seqs / 4, TraceCap: *traceCap / 4})
		fmt.Fprintln(w, sweep.Render())
	}
	fmt.Fprintf(os.Stderr, "repro: done in %v\n", time.Since(start).Round(time.Second))
}
