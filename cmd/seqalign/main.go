// Command seqalign searches a protein database with a query sequence
// using any of the paper's five methods, the reference Smith-Waterman,
// or the SWAR multi-lane kernel, in the spirit of the ssearch/blastp
// command lines of Table I.
//
// Usage:
//
//	seqalign -query P14942 -db synthetic:100 -method ssearch -best 10
//	seqalign -query query.fasta -db swissprot.fasta -method blast -align
//	seqalign -db synthetic:2000 -index db.seqidx -best 10     # seed-and-extend
//	seqalign -db synthetic:2000 -index build -k 5             # index on the fly
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/fasta"
	"repro/internal/index"
)

func main() {
	var (
		queryArg = flag.String("query", "P14942", "query: FASTA file path or a Table II accession")
		dbArg    = flag.String("db", "synthetic:100", "database: FASTA file path or synthetic:<n>")
		dbSeed   = flag.Int64("seed", 20061001, "synthetic database generator seed (must match the one the index was built with)")
		method   = flag.String("method", "ssearch",
			strings.Join(align.KernelNames(), " | ")+" | blast | fasta")
		matrix    = flag.String("s", "BL62", "substitution matrix (BL62, BL50)")
		gapOpen   = flag.Int("gopen", 10, "gap open penalty")
		gapExt    = flag.Int("gext", 1, "gap extension penalty")
		best      = flag.Int("best", 10, "number of hits to report (-b)")
		workers   = flag.Int("workers", 0, "parallel scan workers (0 = all CPUs)")
		related   = flag.Int("related", 0, "plant this many homologs in a synthetic database")
		showAlign = flag.Bool("align", false, "print the top hit's alignment")

		indexArg   = flag.String("index", "", "seed-and-extend: an indexbuild file, or 'build' to index the database in-process")
		kFlag      = flag.Int("k", index.DefaultK, "k-mer length when -index build")
		maxCand    = flag.Int("max-candidates", 0, "candidates the seed filter passes to exact rescoring (0 = default; >= database size = exact scan)")
		stageTimes = flag.Bool("stage-times", false, "print per-stage wall time (prepare/scan/rank) for the exact kernels")
	)
	flag.Parse()

	m, err := bio.MatrixByName(*matrix)
	if err != nil {
		fatal(err)
	}
	params := align.Params{Matrix: m, Gaps: bio.GapPenalty{Open: *gapOpen, Extend: *gapExt}}

	query, err := loadQuery(*queryArg)
	if err != nil {
		fatal(err)
	}
	db, err := bio.LoadDatabase(*dbArg, *dbSeed, *related, query)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query %s (%d aa) vs %d sequences (%d residues), method=%s matrix=%s gaps=%d/%d\n",
		query.ID, query.Len(), db.NumSeqs(), db.TotalResidues(), *method, m.Name, *gapOpen, *gapExt)

	type hit struct {
		seq   *bio.Sequence
		score int
		extra string
	}
	var hits []hit
	if kernel, kerr := align.KernelByName(*method); kerr == nil {
		// Rigorous scans run through the parallel sharded search
		// harness; results are identical for every worker count. With
		// -index the same harness runs seed-and-extend: the filter
		// proposes candidates, the selected kernel rescored them.
		cfg := align.SearchConfig{
			Kernel:  kernel,
			Workers: *workers,
			TopK:    *best,
		}
		if *stageTimes {
			cfg.Observe = func(stage string, d time.Duration) {
				fmt.Printf("stage %-7s %12v\n", stage, d)
			}
		}
		if *indexArg != "" {
			searcher, err := loadSearcher(*indexArg, *kFlag, db, params)
			if err != nil {
				fatal(err)
			}
			cfg.Filter = searcher
			cfg.MaxCandidates = *maxCand
			st := searcher.Index().Stats()
			fmt.Printf("seed index: k=%d, %d distinct k-mers, %d postings (%d capped), %.1f MiB\n",
				st.K, st.DistinctKmers, st.Postings, st.CappedKmers, float64(st.FootprintBytes)/(1<<20))
		}
		res := align.SearchDB(params, query.Residues, db, cfg)
		for _, h := range res {
			hits = append(hits, hit{seq: h.Seq, score: h.Score})
		}
	} else {
		if *indexArg != "" {
			// The heuristic methods run their own seeding; silently
			// dropping -index would let the user attribute their
			// results to a pipeline that never ran.
			fatal(fmt.Errorf("-index only applies to the exact kernels (%s), not -method %s",
				strings.Join(align.KernelNames(), ", "), *method))
		}
		switch *method {
		case "blast":
			p := blast.DefaultParams()
			p.Matrix = m
			p.Gaps = params.Gaps
			res, stats := blast.Search(db, query, p)
			for _, h := range res {
				hits = append(hits, hit{seq: h.Seq, score: h.Score,
					extra: fmt.Sprintf("bits=%.1f E=%.2g", h.BitScore, h.EValue)})
			}
			fmt.Printf("blast stats: %d words scanned, %d word hits, %d seeds extended, %d gapped\n",
				stats.WordsScanned, stats.WordHits, stats.SeedsExtended, stats.GappedExtensions)
		case "fasta":
			p := fasta.DefaultParams()
			p.Matrix = m
			p.Gaps = params.Gaps
			res, _ := fasta.Search(db, query, p)
			for _, h := range res {
				hits = append(hits, hit{seq: h.Seq, score: h.Opt,
					extra: fmt.Sprintf("init1=%d initn=%d", h.Init1, h.Initn)})
			}
		default:
			fatal(fmt.Errorf("unknown method %q (valid: %s, blast, fasta)", *method, strings.Join(align.KernelNames(), ", ")))
		}
	}

	// SearchDB hits arrive ranked; re-sorting is a no-op for them and
	// orders the heuristic methods' results by score.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].score > hits[j-1].score; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	n := *best
	if n > len(hits) {
		n = len(hits)
	}
	fmt.Printf("\nThe best scores are:\n")
	for i := 0; i < n; i++ {
		h := hits[i]
		fmt.Printf("%3d. %-12s (%4d aa) score %5d  %s\n", i+1, h.seq.ID, h.seq.Len(), h.score, h.extra)
	}
	if *showAlign && n > 0 {
		al := align.SWAlign(params, query.Residues, hits[0].seq.Residues)
		fmt.Printf("\nbest alignment (query %d-%d, subject %d-%d, %.0f%% identity):\n%s\n",
			al.AStart+1, al.AEnd, al.BStart+1, al.BEnd, 100*al.Identity,
			al.Format(query.Residues, hits[0].seq.Residues))
	}
}

// loadSearcher resolves -index: "build" constructs a fresh index over
// db in-process; anything else is an indexbuild file, whose database
// fingerprint must match db (NewSearcher enforces it — searching the
// wrong database would return silently wrong candidates).
func loadSearcher(arg string, k int, db *bio.Database, params align.Params) (*index.Searcher, error) {
	var ix *index.Index
	if arg == "build" {
		if k < index.MinK || k > index.MaxK {
			return nil, fmt.Errorf("-k %d outside [%d, %d]", k, index.MinK, index.MaxK)
		}
		ix = index.Build(db, index.Options{K: k})
	} else {
		f, err := os.Open(arg)
		if err != nil {
			return nil, fmt.Errorf("loading index: %w", err)
		}
		defer f.Close()
		ix, err = index.ReadIndex(f)
		if err != nil {
			return nil, fmt.Errorf("loading index %s: %w", arg, err)
		}
		if err := ix.Validate(db); err != nil {
			return nil, fmt.Errorf("index %s: %w (rebuild it for this database, or pass the same -db/-seed/-related to indexbuild and seqalign)", arg, err)
		}
	}
	return index.NewSearcher(ix, db, params, index.SearchOptions{}), nil
}

func loadQuery(arg string) (*bio.Sequence, error) {
	for _, q := range bio.PaperQueryTable {
		if q.Accession == arg {
			return bio.PaperQuery(arg), nil
		}
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("query %q is neither a Table II accession nor a readable file: %w", arg, err)
	}
	defer f.Close()
	seqs, err := bio.ReadFASTA(f)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("no sequences in %s", arg)
	}
	return seqs[0], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqalign:", err)
	os.Exit(1)
}
