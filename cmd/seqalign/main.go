// Command seqalign searches a protein database with a query sequence
// using any of the paper's five methods (or the reference
// Smith-Waterman), in the spirit of the ssearch/blastp command lines
// of Table I.
//
// Usage:
//
//	seqalign -query P14942 -db synthetic:100 -method ssearch -best 10
//	seqalign -query query.fasta -db swissprot.fasta -method blast -align
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/fasta"
)

func main() {
	var (
		queryArg  = flag.String("query", "P14942", "query: FASTA file path or a Table II accession")
		dbArg     = flag.String("db", "synthetic:100", "database: FASTA file path or synthetic:<n>")
		method    = flag.String("method", "ssearch", "ssearch | vmx128 | vmx256 | striped | gotoh | sw | blast | fasta")
		matrix    = flag.String("s", "BL62", "substitution matrix (BL62, BL50)")
		gapOpen   = flag.Int("gopen", 10, "gap open penalty")
		gapExt    = flag.Int("gext", 1, "gap extension penalty")
		best      = flag.Int("best", 10, "number of hits to report (-b)")
		workers   = flag.Int("workers", 0, "parallel scan workers (0 = all CPUs)")
		related   = flag.Int("related", 0, "plant this many homologs in a synthetic database")
		showAlign = flag.Bool("align", false, "print the top hit's alignment")
	)
	flag.Parse()

	m, err := bio.MatrixByName(*matrix)
	if err != nil {
		fatal(err)
	}
	params := align.Params{Matrix: m, Gaps: bio.GapPenalty{Open: *gapOpen, Extend: *gapExt}}

	query, err := loadQuery(*queryArg)
	if err != nil {
		fatal(err)
	}
	db, err := loadDB(*dbArg, query, *related)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query %s (%d aa) vs %d sequences (%d residues), method=%s matrix=%s gaps=%d/%d\n",
		query.ID, query.Len(), db.NumSeqs(), db.TotalResidues(), *method, m.Name, *gapOpen, *gapExt)

	type hit struct {
		seq   *bio.Sequence
		score int
		extra string
	}
	var hits []hit
	if kernel, kerr := align.KernelByName(*method); kerr == nil {
		// Rigorous scans run through the parallel sharded search
		// harness; results are identical for every worker count.
		res := align.SearchDB(params, query.Residues, db, align.SearchConfig{
			Kernel:  kernel,
			Workers: *workers,
			TopK:    *best,
		})
		for _, h := range res {
			hits = append(hits, hit{seq: h.Seq, score: h.Score})
		}
	} else {
		switch *method {
		case "blast":
			p := blast.DefaultParams()
			p.Matrix = m
			p.Gaps = params.Gaps
			res, stats := blast.Search(db, query, p)
			for _, h := range res {
				hits = append(hits, hit{seq: h.Seq, score: h.Score,
					extra: fmt.Sprintf("bits=%.1f E=%.2g", h.BitScore, h.EValue)})
			}
			fmt.Printf("blast stats: %d words scanned, %d word hits, %d seeds extended, %d gapped\n",
				stats.WordsScanned, stats.WordHits, stats.SeedsExtended, stats.GappedExtensions)
		case "fasta":
			p := fasta.DefaultParams()
			p.Matrix = m
			p.Gaps = params.Gaps
			res, _ := fasta.Search(db, query, p)
			for _, h := range res {
				hits = append(hits, hit{seq: h.Seq, score: h.Opt,
					extra: fmt.Sprintf("init1=%d initn=%d", h.Init1, h.Initn)})
			}
		default:
			fatal(fmt.Errorf("unknown method %q", *method))
		}
	}

	// SearchDB hits arrive ranked; re-sorting is a no-op for them and
	// orders the heuristic methods' results by score.
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].score > hits[j-1].score; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	n := *best
	if n > len(hits) {
		n = len(hits)
	}
	fmt.Printf("\nThe best scores are:\n")
	for i := 0; i < n; i++ {
		h := hits[i]
		fmt.Printf("%3d. %-12s (%4d aa) score %5d  %s\n", i+1, h.seq.ID, h.seq.Len(), h.score, h.extra)
	}
	if *showAlign && n > 0 {
		al := align.SWAlign(params, query.Residues, hits[0].seq.Residues)
		fmt.Printf("\nbest alignment (query %d-%d, subject %d-%d, %.0f%% identity):\n%s\n",
			al.AStart+1, al.AEnd, al.BStart+1, al.BEnd, 100*al.Identity,
			al.Format(query.Residues, hits[0].seq.Residues))
	}
}

func loadQuery(arg string) (*bio.Sequence, error) {
	for _, q := range bio.PaperQueryTable {
		if q.Accession == arg {
			return bio.PaperQuery(arg), nil
		}
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("query %q is neither a Table II accession nor a readable file: %w", arg, err)
	}
	defer f.Close()
	seqs, err := bio.ReadFASTA(f)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("no sequences in %s", arg)
	}
	return seqs[0], nil
}

func loadDB(arg string, query *bio.Sequence, related int) (*bio.Database, error) {
	if rest, ok := strings.CutPrefix(arg, "synthetic:"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("bad synthetic database size %q", rest)
		}
		spec := bio.DefaultDBSpec(n)
		if related > 0 {
			spec.Related = related
			spec.RelatedTo = query
		}
		return bio.SyntheticDB(spec), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqs, err := bio.ReadFASTA(f)
	if err != nil {
		return nil, err
	}
	return bio.NewDatabase(seqs), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqalign:", err)
	os.Exit(1)
}
