// Command benchsnap measures the scoring kernels, the parallel scan
// harness, the simulation sweep engine, the indexed seed-and-extend
// search, and the HTTP search service programmatically and writes a
// JSON snapshot (ns/op, GCUPS, allocs/op per kernel; configs simulated
// per second for sweeps; queries per second and recall@10 for indexed
// search; served qps cached and uncached) so the repository's
// performance trajectory is recorded PR over PR (see DESIGN.md). CI
// emits BENCH_<n>.json artifacts with it.
//
// Usage:
//
//	benchsnap [-o BENCH_10.json] [-min-swar-speedup 1.0] [-min-cache-speedup 5.0] [-min-stream-speedup 2.0] [-min-snapshot-speedup 10.0]
//
// The snapshot carries a swar_vs_sw_speedup field (the SWAR kernel's
// Mcells/s over the scalar reference's), a cache_speedup field (the
// service's cache-hit qps over its uncached qps), and a
// stream_vs_post_speedup field (bulk NDJSON queries over one
// /search/stream connection vs the same queries as sequential single
// POSTs), and a snapshot_load_speedup field (opening a SEQSNAP
// artifact vs regenerating the database and rebuilding the index —
// the fast-boot ratio `seqserve -snapshot` buys, see
// internal/snapshot). All gates are ratios measured in the same run,
// not absolute rates, so CI hardware variance cannot flake them:
// -min-swar-speedup
// keeps the multi-lane kernel from regressing below scalar,
// -min-cache-speedup keeps the result cache paying for itself,
// -min-stream-speedup keeps the streaming protocol's per-query
// overhead amortization real, and -min-snapshot-speedup keeps the
// snapshot boot path meaningfully faster than rebuilding.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/simd"
	"repro/internal/snapshot"
	"repro/internal/uarch"
)

// KernelResult is one kernel's measurement.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	McellsPerS  float64 `json:"mcells_per_s"`
	GCUPS       float64 `json:"gcups"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepResult is one measurement of the multi-configuration
// simulation sweep engine (experiments.Lab.SimulateSweep).
type SweepResult struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Configs       int     `json:"configs"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
}

// IndexedResult measures the seed-and-extend pipeline against the
// exact scan it replaces: throughput on both sides, the speedup, and
// the recall@10 the heuristic pays for it.
type IndexedResult struct {
	Name          string  `json:"name"`
	DBSeqs        int     `json:"db_seqs"`
	DBResidues    int     `json:"db_residues"`
	IndexK        int     `json:"index_k"`
	IndexBuildMs  float64 `json:"index_build_ms"`
	IndexBytes    int64   `json:"index_bytes"`
	ExactQPS      float64 `json:"exact_queries_per_sec"`
	IndexedQPS    float64 `json:"indexed_queries_per_sec"`
	Speedup       float64 `json:"speedup"`
	RecallQueries int     `json:"recall_queries"`
	RecallAt10    float64 `json:"recall_at_10"`
}

// SnapLoadResult compares the two ways a server can come to own a
// (database, index) pair: rebuild — regenerate/parse the database and
// index it, what `seqserve -db` does at boot — against opening a
// prebuilt SEQSNAP artifact, what `seqserve -snapshot` and POST
// /admin/reload do. The ratio is the fast-boot leverage snapshots
// exist for.
type SnapLoadResult struct {
	Name       string  `json:"name"`
	DBSeqs     int     `json:"db_seqs"`
	FileBytes  int64   `json:"file_bytes"`
	Mapped     bool    `json:"mapped"`
	RebuildMs  float64 `json:"rebuild_ms"`
	LoadMs     float64 `json:"load_ms"`
	Speedup    float64 `json:"speedup"`
	VerifiedMs float64 `json:"verified_load_ms"` // load with every checksum re-computed
}

// ServerResult is one measurement of the HTTP search service: full
// request service through the handler (JSON decode, validation,
// admission, batched indexed scan, ranking, JSON encode), with the
// result cache disabled (server_qps) or serving steady-state hits
// (cache_hit_qps).
type ServerResult struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	DBSeqs  int     `json:"db_seqs"`
	QPS     float64 `json:"qps"`
	MeanUs  float64 `json:"mean_us"`
}

// Snapshot is the file format.
type Snapshot struct {
	GoVersion     string           `json:"go_version"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Query         string           `json:"query"`
	QueryLen      int              `json:"query_len"`
	SubjectLen    int              `json:"subject_len"`
	SwarVsSw      float64          `json:"swar_vs_sw_speedup"`
	CacheSpeedup  float64          `json:"cache_speedup"`
	StreamVsPost  float64          `json:"stream_vs_post_speedup"`
	SnapSpeedup   float64          `json:"snapshot_load_speedup"`
	LoadgenP99Us  float64          `json:"loadgen_p99_us"`
	LoadgenCV     float64          `json:"loadgen_cv"`
	Kernels       []KernelResult   `json:"kernels"`
	Scan          []KernelResult   `json:"scan"`
	Sweep         []SweepResult    `json:"sweep"`
	IndexedSearch []IndexedResult  `json:"indexed_search"`
	SnapshotLoad  []SnapLoadResult `json:"snapshot_load"`
	Server        []ServerResult   `json:"server"`
}

func main() {
	out := flag.String("o", "BENCH_10.json", "output file")
	minSwar := flag.Float64("min-swar-speedup", 0,
		"fail unless the swar kernel is at least this many times faster than scalar sw (0 disables)")
	minCache := flag.Float64("min-cache-speedup", 0,
		"fail unless cached /search qps is at least this many times the uncached qps (0 disables)")
	minStream := flag.Float64("min-stream-speedup", 0,
		"fail unless bulk /search/stream qps is at least this many times sequential single-POST qps (0 disables)")
	minSnap := flag.Float64("min-snapshot-speedup", 0,
		"fail unless opening a SEQSNAP snapshot is at least this many times faster than regenerating the database and rebuilding the index (0 disables)")
	flag.Parse()

	p := align.PaperParams()
	q := bio.GlutathioneQuery()
	subject := bio.RandomSequence("S", 360, 99).Residues
	prof := align.NewProfile(q.Residues, p)
	sp := align.NewStripedProfile(q.Residues, p, simd.Lanes128)
	swp := align.NewSWARProfile(q.Residues, p)
	cells := float64(q.Len() * len(subject))

	mark := func(name string, cells float64, f func(*align.Scratch)) KernelResult {
		r := testing.Benchmark(func(b *testing.B) {
			scr := align.NewScratch()
			f(scr) // size the scratch before measuring
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f(scr)
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		rate := cells / ns * 1e9
		return KernelResult{
			Name:        name,
			NsPerOp:     ns,
			McellsPerS:  rate / 1e6,
			GCUPS:       rate / 1e9,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Query:      q.ID,
		QueryLen:   q.Len(),
		SubjectLen: len(subject),
	}
	snap.Kernels = append(snap.Kernels,
		mark("sw", cells, func(s *align.Scratch) { s.SWScore(p, q.Residues, subject) }),
		mark("ssearch", cells, func(s *align.Scratch) { s.SSEARCHScore(prof, subject) }),
		mark("gotoh", cells, func(s *align.Scratch) { s.GotohScore(prof, subject) }),
		mark("vmx128", cells, func(s *align.Scratch) { s.SWScoreVMX128(prof, subject) }),
		mark("vmx256", cells, func(s *align.Scratch) { s.SWScoreVMX256(prof, subject) }),
		mark("striped", cells, func(s *align.Scratch) { s.SWScoreStriped(sp, subject) }),
		mark("swar", cells, func(s *align.Scratch) { s.SWScoreSWAR(swp, subject) }),
	)
	var swRate, swarRate float64
	for _, k := range snap.Kernels {
		switch k.Name {
		case "sw":
			swRate = k.McellsPerS
		case "swar":
			swarRate = k.McellsPerS
		}
	}
	snap.SwarVsSw = swarRate / swRate

	spec := bio.DefaultDBSpec(100)
	spec.Related = 5
	spec.RelatedTo = q
	db := bio.SyntheticDB(spec)
	scanCells := float64(q.Len() * db.TotalResidues())
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		w := workers
		snap.Scan = append(snap.Scan,
			mark(fmt.Sprintf("searchdb-ssearch-w%d", w), scanCells, func(*align.Scratch) {
				align.SearchDB(p, q.Residues, db, align.SearchConfig{
					Kernel: align.KernelSSEARCH, Workers: w, TopK: 20,
				})
			}),
			mark(fmt.Sprintf("searchdb-swar-w%d", w), scanCells, func(*align.Scratch) {
				align.SearchDB(p, q.Residues, db, align.SearchConfig{
					Kernel: align.KernelSWAR, Workers: w, TopK: 20,
				})
			}))
		if runtime.GOMAXPROCS(0) == 1 {
			break
		}
	}

	// Sweep throughput: one captured trace replayed through a grid of
	// configurations, serial vs all cores (bit-identical results — the
	// determinism tests assert it; this records the rate).
	lab := experiments.NewLab(experiments.Scale{Seqs: 4, TraceCap: 60_000})
	var sweepCfgs []uarch.Config
	memCfgs := uarch.MemoryConfigs()
	for _, w := range []int{4, 8, 16} {
		sweepCfgs = append(sweepCfgs,
			uarch.ConfigByWidth(w),
			uarch.ConfigByWidth(w).WithMemory(memCfgs[len(memCfgs)-1]))
	}
	lab.Trace("fasta34") // capture outside the timed region
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		lab.Workers = workers
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab.SimulateSweep("fasta34", sweepCfgs)
			}
		})
		secPerSweep := r.T.Seconds() / float64(r.N)
		snap.Sweep = append(snap.Sweep, SweepResult{
			Name:          fmt.Sprintf("simulatesweep-fasta34-w%d", workers),
			Workers:       workers,
			Configs:       len(sweepCfgs),
			ConfigsPerSec: float64(len(sweepCfgs)) / secPerSweep,
		})
		if runtime.GOMAXPROCS(0) == 1 {
			break
		}
	}

	// Indexed seed-and-extend search vs the exact scan it replaces, on
	// the homolog-rich benchmark database (the setting where recall of
	// a seeding heuristic is meaningful: the paper's heuristics are
	// judged on finding true relatives). The index is built once and
	// amortized across queries, mirroring production use.
	idxSpec := bio.DefaultDBSpec(1000)
	idxSpec.Related = 20
	idxSpec.RelatedTo = q
	idxDB := bio.SyntheticDB(idxSpec)
	buildStart := time.Now()
	ix := index.Build(idxDB, index.Options{})
	buildMs := float64(time.Since(buildStart).Microseconds()) / 1e3
	searcher := index.NewSearcher(ix, idxDB, p, index.SearchOptions{})
	exactCfg := align.SearchConfig{Kernel: align.KernelSSEARCH, TopK: 10}
	// The epoch-aware entry: the (db, filter) pair travels as one value,
	// the same shape a hot-reloading server swaps atomically.
	epoch := &align.Epoch{DB: idxDB, Filter: searcher}

	// Recall@10 over the planted parent plus a few of its homologs as
	// queries — each has a well-defined exact top-10 dominated by the
	// family.
	queries := [][]uint8{q.Residues}
	for _, s := range idxDB.Seqs {
		if strings.Contains(s.Desc, "homolog") {
			queries = append(queries, s.Residues)
			if len(queries) == 4 {
				break
			}
		}
	}
	found, total := 0, 0
	for _, query := range queries {
		exactHits := align.SearchDB(p, query, idxDB, exactCfg)
		got := map[int]bool{}
		for _, h := range epoch.Search(p, query, exactCfg) {
			got[h.Index] = true
		}
		for _, h := range exactHits {
			total++
			if got[h.Index] {
				found++
			}
		}
	}

	exactBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.SearchDB(p, q.Residues, idxDB, exactCfg)
		}
	})
	indexedBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			epoch.Search(p, q.Residues, exactCfg)
		}
	})
	exactQPS := 1e9 / (float64(exactBench.T.Nanoseconds()) / float64(exactBench.N))
	indexedQPS := 1e9 / (float64(indexedBench.T.Nanoseconds()) / float64(indexedBench.N))
	snap.IndexedSearch = append(snap.IndexedSearch, IndexedResult{
		Name:          "seed-and-extend-vs-ssearch",
		DBSeqs:        idxDB.NumSeqs(),
		DBResidues:    idxDB.TotalResidues(),
		IndexK:        ix.K(),
		IndexBuildMs:  buildMs,
		IndexBytes:    ix.Stats().FootprintBytes,
		ExactQPS:      exactQPS,
		IndexedQPS:    indexedQPS,
		Speedup:       indexedQPS / exactQPS,
		RecallQueries: len(queries),
		RecallAt10:    float64(found) / float64(total),
	})

	// Snapshot boot path: pack the benchmark database and its index into
	// a SEQSNAP artifact once, then time opening it against the cold
	// path it replaces (regenerate the database, rebuild the index —
	// exactly what a `seqserve -db synthetic:...` boot pays). Both sides
	// are medians of repeated timed passes, and the ratio is the gate.
	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("benchsnap-%d.snap", os.Getpid()))
	defer os.Remove(snapPath)
	if _, err := snapshot.Write(snapPath, idxDB, ix, snapshot.Manifest{Version: "bench", Tool: "benchsnap"}); err != nil {
		fatal(err)
	}
	snapInfo, err := os.Stat(snapPath)
	if err != nil {
		fatal(err)
	}
	medianMs := func(passes int, f func()) float64 {
		times := make([]float64, passes)
		for i := range times {
			start := time.Now()
			f()
			times[i] = float64(time.Since(start).Microseconds()) / 1e3
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	rebuildMs := medianMs(5, func() {
		rdb := bio.SyntheticDB(idxSpec)
		index.Build(rdb, index.Options{})
	})
	var lastMapped bool
	loadMs := medianMs(21, func() {
		s, err := snapshot.Open(snapPath, snapshot.OpenOptions{})
		if err != nil {
			fatal(err)
		}
		lastMapped = s.Mapped()
		s.Close()
	})
	verifiedMs := medianMs(11, func() {
		s, err := snapshot.Open(snapPath, snapshot.OpenOptions{Verify: true})
		if err != nil {
			fatal(err)
		}
		s.Close()
	})
	snap.SnapSpeedup = rebuildMs / loadMs
	snap.SnapshotLoad = append(snap.SnapshotLoad, SnapLoadResult{
		Name:       "seqsnap-open-vs-rebuild",
		DBSeqs:     idxDB.NumSeqs(),
		FileBytes:  snapInfo.Size(),
		Mapped:     lastMapped,
		RebuildMs:  rebuildMs,
		LoadMs:     loadMs,
		Speedup:    snap.SnapSpeedup,
		VerifiedMs: verifiedMs,
	})

	// The search service end to end, on the same indexed benchmark
	// database: server_qps is the uncached rate (cache disabled, every
	// request runs the batched indexed scan), cache_hit_qps the
	// steady-state LRU-hit rate of an identical request stream. Both
	// go through the full HTTP handler, so the ratio is the cache's
	// real leverage including JSON and admission overhead.
	serveDB := func(name string, cacheEntries int) ServerResult {
		srv, err := server.New(idxDB, ix, server.Config{CacheEntries: cacheEntries})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		handler := srv.Handler()
		body, err := json.Marshal(server.SearchRequest{Query: q.String(), K: 10})
		if err != nil {
			fatal(err)
		}
		post := func() {
			rec := httptest.NewRecorder()
			rq := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
			handler.ServeHTTP(rec, rq)
			if rec.Code != http.StatusOK {
				fatal(fmt.Errorf("%s: /search returned %d: %s", name, rec.Code, rec.Body.String()))
			}
		}
		post() // warm scratch buffers and, when enabled, the cache
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				post()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		return ServerResult{
			Name:    name,
			Workers: runtime.GOMAXPROCS(0),
			DBSeqs:  idxDB.NumSeqs(),
			QPS:     1e9 / ns,
			MeanUs:  ns / 1e3,
		}
	}
	uncachedRow := serveDB("server_qps", -1)
	cachedRow := serveDB("cache_hit_qps", 0)
	snap.Server = append(snap.Server, uncachedRow, cachedRow)
	snap.CacheSpeedup = cachedRow.QPS / uncachedRow.QPS

	// Streaming bulk-query protocol vs one POST per query, over a real
	// TCP listener (the stream path needs full-duplex HTTP, which
	// httptest recorders don't exercise). The workload is deliberately
	// overhead-dominated — a small database, short distinct queries,
	// the cache disabled — because that is the regime the protocol
	// exists for: when per-request HTTP costs rival the alignment
	// itself, one connection with a pipelined window amortizes them;
	// when compute dominates, both transports converge on kernel speed
	// and the ratio tells you nothing.
	streamSpec := bio.DefaultDBSpec(60)
	streamSpec.MeanLen = 80 // short subjects: a single rescore is microseconds
	streamSpec.MaxLen = 120
	streamSpec.Related = 3
	streamSpec.RelatedTo = q
	streamDB := bio.SyntheticDB(streamSpec)
	streamIx := index.Build(streamDB, index.Options{})
	streamSrv, err := server.New(streamDB, streamIx, server.Config{CacheEntries: -1})
	if err != nil {
		fatal(err)
	}
	defer streamSrv.Close()
	ts := httptest.NewServer(streamSrv.Handler())
	defer ts.Close()

	const streamN = 8000
	postBodies := make([][]byte, streamN)
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for i := 0; i < streamN; i++ {
		seq := bio.Decode(streamDB.Seqs[i%streamDB.NumSeqs()].Residues)
		if len(seq) > 12 {
			seq = seq[:12]
		}
		// Vary the query per line so no two lines share a cache key
		// even if caching were on — each line does real work.
		sr := server.SearchRequest{Query: fmt.Sprintf("%s%s", seq, "ACDE"[i%4:i%4+1]), K: 1, MaxCandidates: 1}
		postBodies[i], err = json.Marshal(&sr)
		if err != nil {
			fatal(err)
		}
		if err := enc.Encode(&server.StreamRequest{ID: fmt.Sprintf("q%06d", i), SearchRequest: sr}); err != nil {
			fatal(err)
		}
	}
	client := ts.Client()
	postPass := func(n int) float64 {
		start := time.Now()
		for i := 0; i < n; i++ {
			resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(postBodies[i]))
			if err != nil {
				fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("stream bench: POST %d returned %d", i, resp.StatusCode))
			}
		}
		return float64(n) / time.Since(start).Seconds()
	}
	streamPass := func() float64 {
		start := time.Now()
		resp, err := client.Post(ts.URL+"/search/stream", "application/x-ndjson", bytes.NewReader(ndjson.Bytes()))
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("stream bench: /search/stream returned %d", resp.StatusCode))
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		var results int
		var terminal server.StreamResult
		for sc.Scan() {
			// Decode only the terminal line: the post pass discards its
			// response bodies undecoded, and on one CPU the measuring
			// client's own JSON work would otherwise bill the server.
			if !bytes.Contains(sc.Bytes(), []byte(`"terminal":true`)) {
				results++
				continue
			}
			if err := json.Unmarshal(sc.Bytes(), &terminal); err != nil {
				fatal(fmt.Errorf("stream bench: bad terminal line %q: %v", sc.Text(), err))
			}
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
		if results != streamN || terminal.Results != int64(streamN) || terminal.Errors != 0 {
			fatal(fmt.Errorf("stream bench: %d/%d results, terminal %+v", results, streamN, terminal))
		}
		return float64(streamN) / time.Since(start).Seconds()
	}
	postPass(200) // warm the connection pool and scratch buffers
	streamPass()
	postQPS := postPass(streamN)
	streamQPS := streamPass()
	snap.Server = append(snap.Server,
		ServerResult{Name: "post_qps", Workers: runtime.GOMAXPROCS(0), DBSeqs: streamDB.NumSeqs(),
			QPS: postQPS, MeanUs: 1e6 / postQPS},
		ServerResult{Name: "stream_qps", Workers: runtime.GOMAXPROCS(0), DBSeqs: streamDB.NumSeqs(),
			QPS: streamQPS, MeanUs: 1e6 / streamQPS})
	snap.StreamVsPost = streamQPS / postQPS

	// Open-loop tail latency through the same live listener: three
	// short fixed-rate passes of the loadgen harness (Zipf-popular
	// corpus drawn from the serving database, cache disabled) record
	// the p99 a production-shaped arrival process sees, plus its
	// run-to-run coefficient of variation — the snapshot's regression
	// trail for the serving tail, not just its mean throughput.
	lgQueries := make([]string, 0, 32)
	for i := 0; i < 32 && i < streamDB.NumSeqs(); i++ {
		lgq := bio.Decode(streamDB.Seqs[i].Residues)
		if len(lgq) > 80 {
			lgq = lgq[:80]
		}
		lgQueries = append(lgQueries, lgq)
	}
	var lgRuns []loadgen.Result
	for run := 0; run < 3; run++ {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  ts.URL,
			Client:   ts.Client(),
			Rate:     300,
			Duration: time.Second,
			Queries:  lgQueries,
			Seed:     1,
			K:        5,
		})
		if err != nil {
			fatal(err)
		}
		if res.Errors > 0 {
			fatal(fmt.Errorf("loadgen pass: %d/%d requests failed: %v", res.Errors, res.Sent, res.ErrorsByCode))
		}
		lgRuns = append(lgRuns, res)
	}
	lgSummary := loadgen.Summarize(lgRuns)
	snap.LoadgenP99Us = lgSummary.P99MeanUs
	snap.LoadgenCV = lgSummary.P99CV

	// All-vs-all coalesced pass: the library-level engine behind the
	// stream's all_vs_all mode, recorded as cells/sec like the other
	// scan rows (cells = sum of query lengths x database residues).
	avaQueries := make([][]uint8, 8)
	var avaQueryCells int
	for i := range avaQueries {
		avaQueries[i] = idxDB.Seqs[i].Residues
		avaQueryCells += len(avaQueries[i])
	}
	avaCells := float64(avaQueryCells * idxDB.TotalResidues())
	snap.Scan = append(snap.Scan,
		mark("searchdball-swar-q8", avaCells, func(*align.Scratch) {
			if _, err := align.SearchDBAll(context.Background(), p, avaQueries, idxDB, align.SearchConfig{
				Kernel: align.KernelSWAR, TopK: 10,
			}); err != nil {
				fatal(err)
			}
		}))

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	ir := snap.IndexedSearch[0]
	sl := snap.SnapshotLoad[0]
	fmt.Printf("wrote %s (%d kernels, %d scan points, %d sweep points; swar %.2fx sw, indexed search %.1fx at recall@10 %.2f; server %.0f qps uncached, %.0f qps cached = %.0fx; stream %.0f qps vs post %.0f qps = %.2fx; snapshot open %.2fms vs rebuild %.0fms = %.0fx; loadgen p99 %.0fµs cv %.1f%%)\n",
		*out, len(snap.Kernels), len(snap.Scan), len(snap.Sweep), snap.SwarVsSw, ir.Speedup, ir.RecallAt10,
		uncachedRow.QPS, cachedRow.QPS, snap.CacheSpeedup, streamQPS, postQPS, snap.StreamVsPost,
		sl.LoadMs, sl.RebuildMs, snap.SnapSpeedup,
		snap.LoadgenP99Us, 100*snap.LoadgenCV)
	if *minSwar > 0 && snap.SwarVsSw < *minSwar {
		fatal(fmt.Errorf("swar kernel is %.2fx scalar sw, below the required %.2fx", snap.SwarVsSw, *minSwar))
	}
	if *minCache > 0 && snap.CacheSpeedup < *minCache {
		fatal(fmt.Errorf("cached /search is %.2fx uncached, below the required %.2fx", snap.CacheSpeedup, *minCache))
	}
	if *minStream > 0 && snap.StreamVsPost < *minStream {
		fatal(fmt.Errorf("bulk /search/stream is %.2fx sequential POSTs, below the required %.2fx", snap.StreamVsPost, *minStream))
	}
	if *minSnap > 0 && snap.SnapSpeedup < *minSnap {
		fatal(fmt.Errorf("snapshot open is %.2fx the rebuild path, below the required %.2fx", snap.SnapSpeedup, *minSnap))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
