// Command benchsnap measures the scoring kernels, the parallel scan
// harness, and the simulation sweep engine programmatically and writes
// a JSON snapshot (ns/op, GCUPS, allocs/op per kernel; configs
// simulated per second for sweeps) so the repository's performance
// trajectory is recorded PR over PR (see DESIGN.md). CI emits
// BENCH_<n>.json artifacts with it.
//
// Usage:
//
//	benchsnap [-o BENCH_2.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/align"
	"repro/internal/bio"
	"repro/internal/experiments"
	"repro/internal/simd"
	"repro/internal/uarch"
)

// KernelResult is one kernel's measurement.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	McellsPerS  float64 `json:"mcells_per_s"`
	GCUPS       float64 `json:"gcups"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepResult is one measurement of the multi-configuration
// simulation sweep engine (experiments.Lab.SimulateSweep).
type SweepResult struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Configs       int     `json:"configs"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
}

// Snapshot is the file format.
type Snapshot struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Query      string         `json:"query"`
	QueryLen   int            `json:"query_len"`
	SubjectLen int            `json:"subject_len"`
	Kernels    []KernelResult `json:"kernels"`
	Scan       []KernelResult `json:"scan"`
	Sweep      []SweepResult  `json:"sweep"`
}

func main() {
	out := flag.String("o", "BENCH_2.json", "output file")
	flag.Parse()

	p := align.PaperParams()
	q := bio.GlutathioneQuery()
	subject := bio.RandomSequence("S", 360, 99).Residues
	prof := align.NewProfile(q.Residues, p)
	sp := align.NewStripedProfile(q.Residues, p, simd.Lanes128)
	cells := float64(q.Len() * len(subject))

	mark := func(name string, cells float64, f func(*align.Scratch)) KernelResult {
		r := testing.Benchmark(func(b *testing.B) {
			scr := align.NewScratch()
			f(scr) // size the scratch before measuring
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f(scr)
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		rate := cells / ns * 1e9
		return KernelResult{
			Name:        name,
			NsPerOp:     ns,
			McellsPerS:  rate / 1e6,
			GCUPS:       rate / 1e9,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Query:      q.ID,
		QueryLen:   q.Len(),
		SubjectLen: len(subject),
	}
	snap.Kernels = append(snap.Kernels,
		mark("sw", cells, func(s *align.Scratch) { s.SWScore(p, q.Residues, subject) }),
		mark("ssearch", cells, func(s *align.Scratch) { s.SSEARCHScore(prof, subject) }),
		mark("gotoh", cells, func(s *align.Scratch) { s.GotohScore(prof, subject) }),
		mark("vmx128", cells, func(s *align.Scratch) { s.SWScoreVMX128(prof, subject) }),
		mark("vmx256", cells, func(s *align.Scratch) { s.SWScoreVMX256(prof, subject) }),
		mark("striped", cells, func(s *align.Scratch) { s.SWScoreStriped(sp, subject) }),
	)

	spec := bio.DefaultDBSpec(100)
	spec.Related = 5
	spec.RelatedTo = q
	db := bio.SyntheticDB(spec)
	scanCells := float64(q.Len() * db.TotalResidues())
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		w := workers
		snap.Scan = append(snap.Scan,
			mark(fmt.Sprintf("searchdb-ssearch-w%d", w), scanCells, func(*align.Scratch) {
				align.SearchDB(p, q.Residues, db, align.SearchConfig{
					Kernel: align.KernelSSEARCH, Workers: w, TopK: 20,
				})
			}))
		if runtime.GOMAXPROCS(0) == 1 {
			break
		}
	}

	// Sweep throughput: one captured trace replayed through a grid of
	// configurations, serial vs all cores (bit-identical results — the
	// determinism tests assert it; this records the rate).
	lab := experiments.NewLab(experiments.Scale{Seqs: 4, TraceCap: 60_000})
	var sweepCfgs []uarch.Config
	memCfgs := uarch.MemoryConfigs()
	for _, w := range []int{4, 8, 16} {
		sweepCfgs = append(sweepCfgs,
			uarch.ConfigByWidth(w),
			uarch.ConfigByWidth(w).WithMemory(memCfgs[len(memCfgs)-1]))
	}
	lab.Trace("fasta34") // capture outside the timed region
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		lab.Workers = workers
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab.SimulateSweep("fasta34", sweepCfgs)
			}
		})
		secPerSweep := r.T.Seconds() / float64(r.N)
		snap.Sweep = append(snap.Sweep, SweepResult{
			Name:          fmt.Sprintf("simulatesweep-fasta34-w%d", workers),
			Workers:       workers,
			Configs:       len(sweepCfgs),
			ConfigsPerSec: float64(len(sweepCfgs)) / secPerSweep,
		})
		if runtime.GOMAXPROCS(0) == 1 {
			break
		}
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d kernels, %d scan points, %d sweep points)\n",
		*out, len(snap.Kernels), len(snap.Scan), len(snap.Sweep))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
