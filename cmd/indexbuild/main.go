// Command indexbuild builds, saves, and inspects k-mer seed indexes
// (internal/index) over a protein database. The saved index is what
// turns seqalign's exhaustive scans into seed-and-extend searches
// (seqalign -index); building it once and reusing it across queries
// is the whole point of indexing the database rather than the query.
//
// Usage:
//
//	indexbuild -db synthetic:2000 -o db.seqidx          # build + save
//	indexbuild -db swissprot.fasta -k 5 -o sp.seqidx    # from FASTA
//	indexbuild -inspect db.seqidx                       # header + stats
//
// The snapshot subcommand packages the database AND its index into one
// mmap-able SEQSNAP artifact — what `seqserve -snapshot` boots from in
// milliseconds and what POST /admin/reload hot-swaps:
//
//	indexbuild snapshot -db swissprot.fasta -version v1 -o sp.snap   # build
//	indexbuild snapshot -db synthetic:300 -shard 100:200 -version v1 -o s1.snap  # per-shard
//	indexbuild snapshot -inspect sp.snap                # manifest, no data read
//	indexbuild snapshot -verify sp.snap                 # checksums + full reconstruction
//
// Synthetic databases are generated with the same defaults as dbgen
// and seqalign (seed 20061001), so `indexbuild -db synthetic:N` and
// `seqalign -db synthetic:N` agree on the database bit for bit; pass
// the same -seed/-related/-parent to all of them when overriding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bio"
	"repro/internal/index"
	"repro/internal/snapshot"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		snapshotCmd(os.Args[2:])
		return
	}
	var (
		dbArg    = flag.String("db", "", "database to index: FASTA file path or synthetic:<n>")
		dbSeed   = flag.Int64("seed", 20061001, "synthetic database generator seed")
		related  = flag.Int("related", 0, "plant this many homologs in a synthetic database")
		parent   = flag.String("parent", "P14942", "Table II accession the planted homologs derive from")
		k        = flag.Int("k", index.DefaultK, "k-mer length")
		capFlag  = flag.Int("cap", index.DefaultMaxPostings, "max postings per k-mer (-1 = uncapped)")
		workers  = flag.Int("workers", 0, "build workers (0 = all CPUs; any count builds the identical index)")
		out      = flag.String("o", "", "write the index to this path")
		inspect  = flag.String("inspect", "", "load an index file and print its statistics")
		topKmers = flag.Int("top", 5, "with -inspect, show the most frequent k-mers")
	)
	flag.Parse()

	if *inspect != "" {
		inspectIndex(*inspect, *topKmers)
		return
	}
	if *dbArg == "" {
		fatal(fmt.Errorf("nothing to do: pass -db to build or -inspect to examine an index"))
	}

	if *k < index.MinK || *k > index.MaxK {
		fatal(fmt.Errorf("-k %d outside [%d, %d]", *k, index.MinK, index.MaxK))
	}
	// The parent accession is only resolved when homologs are planted:
	// bio.PaperQuery panics on unknown accessions, and -parent is
	// meaningless without -related.
	var parentSeq *bio.Sequence
	if *related > 0 {
		parentSeq = bio.PaperQuery(*parent)
	}
	db, err := bio.LoadDatabase(*dbArg, *dbSeed, *related, parentSeq)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	ix := index.Build(db, index.Options{K: *k, MaxPostings: *capFlag, Workers: *workers})
	buildTime := time.Since(start)
	printStats(ix.Stats())
	fmt.Printf("built in %v over %d sequences\n", buildTime.Round(time.Millisecond), db.NumSeqs())

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := index.WriteIndex(f, ix); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	// Read the file straight back: a save that cannot round-trip is a
	// bug worth failing loudly on, and the reload re-checks the
	// database fingerprint the searches will rely on.
	rf, err := os.Open(*out)
	if err != nil {
		fatal(err)
	}
	reloaded, err := index.ReadIndex(rf)
	rf.Close()
	if err != nil {
		fatal(fmt.Errorf("verifying %s: %w", *out, err))
	}
	if err := reloaded.Validate(db); err != nil {
		fatal(fmt.Errorf("verifying %s: %w", *out, err))
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, verified round-trip)\n", *out, info.Size())
}

// snapshotCmd implements `indexbuild snapshot`: build a SEQSNAP
// artifact from a database (+ freshly built index), or inspect/verify
// an existing one. Build and the two read modes are mutually
// exclusive.
func snapshotCmd(argv []string) {
	fs := flag.NewFlagSet("indexbuild snapshot", flag.ExitOnError)
	var (
		dbArg   = fs.String("db", "", "database to snapshot: FASTA file path or synthetic:<n>")
		dbSeed  = fs.Int64("seed", 20061001, "synthetic database generator seed")
		related = fs.Int("related", 0, "plant this many homologs in a synthetic database")
		parent  = fs.String("parent", "P14942", "Table II accession the planted homologs derive from")
		k       = fs.Int("k", index.DefaultK, "k-mer length")
		capFlag = fs.Int("cap", index.DefaultMaxPostings, "max postings per k-mer (-1 = uncapped)")
		workers = fs.Int("workers", 0, "index build workers (0 = all CPUs)")
		shard   = fs.String("shard", "",
			"snapshot only the contiguous slice lo:hi (hi exclusive) — the per-shard artifact a sharded seqserve boots from")
		version = fs.String("version", "", "operator version label stamped into the manifest (required to build; e.g. v2026-08-08)")
		out     = fs.String("o", "", "write the snapshot to this path (required to build)")
		inspect = fs.String("inspect", "", "print an existing snapshot's manifest (reads the header only)")
		verify  = fs.String("verify", "", "fully open an existing snapshot with every section checksummed, and re-validate the index against the database")
	)
	_ = fs.Parse(argv)

	switch {
	case *inspect != "":
		m, err := snapshot.ReadManifest(*inspect)
		if err != nil {
			fatal(err)
		}
		info, err := os.Stat(*inspect)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot %s: %d bytes\n", *inspect, info.Size())
		printManifest(m)
		return

	case *verify != "":
		start := time.Now()
		snap, err := snapshot.Open(*verify, snapshot.OpenOptions{Verify: true})
		if err != nil {
			fatal(fmt.Errorf("verifying %s: %w", *verify, err))
		}
		defer snap.Close()
		if err := snap.Index.Validate(snap.DB); err != nil {
			fatal(fmt.Errorf("verifying %s: index/database mismatch: %w", *verify, err))
		}
		if got := snapshot.DBHash(snap.DB); got != snap.Manifest.DBHash {
			fatal(fmt.Errorf("verifying %s: database hash %s does not match the manifest's %s", *verify, got, snap.Manifest.DBHash))
		}
		printManifest(snap.Manifest)
		fmt.Printf("verified in %v: all section checksums match, index validates, db hash matches\n",
			time.Since(start).Round(time.Millisecond))
		return
	}

	if *dbArg == "" {
		fatal(fmt.Errorf("nothing to do: pass -db/-version/-o to build, or -inspect/-verify to examine a snapshot"))
	}
	if *version == "" || *out == "" {
		fatal(fmt.Errorf("building a snapshot requires -version (the operator label reloads report) and -o"))
	}
	if *k < index.MinK || *k > index.MaxK {
		fatal(fmt.Errorf("-k %d outside [%d, %d]", *k, index.MinK, index.MaxK))
	}
	var parentSeq *bio.Sequence
	if *related > 0 {
		parentSeq = bio.PaperQuery(*parent)
	}
	db, err := bio.LoadDatabase(*dbArg, *dbSeed, *related, parentSeq)
	if err != nil {
		fatal(err)
	}
	if *shard != "" {
		lo, hi, err := parseShardRange(*shard, db.NumSeqs())
		if err != nil {
			fatal(err)
		}
		db = bio.NewDatabase(db.Seqs[lo:hi])
		fmt.Printf("snapshotting shard %d:%d (%d of the database's sequences)\n", lo, hi, db.NumSeqs())
	}
	start := time.Now()
	ix := index.Build(db, index.Options{K: *k, MaxPostings: *capFlag, Workers: *workers})
	buildTime := time.Since(start)
	m, err := snapshot.Write(*out, db, ix, snapshot.Manifest{Version: *version, Tool: "indexbuild"})
	if err != nil {
		fatal(err)
	}
	// Open what was written, checksums and all: a snapshot that cannot
	// round-trip must fail here, not at 3am in a reload.
	snap, err := snapshot.Open(*out, snapshot.OpenOptions{Verify: true})
	if err != nil {
		fatal(fmt.Errorf("verifying %s: %w", *out, err))
	}
	snap.Close()
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	printManifest(m)
	fmt.Printf("wrote %s (%d bytes, verified round-trip) — index built in %v\n",
		*out, info.Size(), buildTime.Round(time.Millisecond))
}

// parseShardRange parses -shard's lo:hi against the database size.
func parseShardRange(spec string, n int) (lo, hi int, err error) {
	loStr, hiStr, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q is not lo:hi", spec)
	}
	if lo, err = strconv.Atoi(loStr); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: bad lo: %v", spec, err)
	}
	if hi, err = strconv.Atoi(hiStr); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: bad hi: %v", spec, err)
	}
	if lo < 0 || hi <= lo || hi > n {
		return 0, 0, fmt.Errorf("-shard %d:%d outside the database's [0, %d]", lo, hi, n)
	}
	return lo, hi, nil
}

func printManifest(m snapshot.Manifest) {
	fmt.Printf("  version:        %s\n", m.Version)
	fmt.Printf("  created:        %s", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	if m.Tool != "" {
		fmt.Printf(" by %s", m.Tool)
	}
	fmt.Println()
	fmt.Printf("  database:       %d sequences, %d residues, hash %s\n", m.NumSeqs, m.TotalResidues, m.DBHash)
	capStr := strconv.Itoa(m.MaxPostings)
	if m.MaxPostings < 0 {
		capStr = "uncapped"
	}
	fmt.Printf("  index:          k=%d cap=%s, %d distinct k-mers, %d postings\n", m.K, capStr, m.DistinctKmers, m.Postings)
}

func inspectIndex(path string, topKmers int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	ix, err := index.ReadIndex(f)
	if err != nil {
		fatal(err)
	}
	printStats(ix.Stats())
	if topKmers > 0 {
		top := mostFrequent(ix, topKmers)
		fmt.Printf("most frequent k-mers:\n")
		for _, e := range top {
			note := ""
			if e.stored == 0 && e.raw > 0 {
				note = "  (capped: postings dropped)"
			}
			fmt.Printf("  %-13s x%-6d stored %d%s\n", bio.Decode(index.UnpackKmer(e.key, ix.K())), e.raw, e.stored, note)
		}
	}
}

type kmerFreq struct {
	key         uint64
	raw, stored int
}

// mostFrequent ranks the index's k-mers by raw occurrence count,
// keeping a small insertion-sorted top list while streaming entries.
func mostFrequent(ix *index.Index, n int) []kmerFreq {
	top := make([]kmerFreq, 0, n+1)
	ix.ForEachEntry(func(key uint64, raw, stored int) {
		top = append(top, kmerFreq{key: key, raw: raw, stored: stored})
		for i := len(top) - 1; i > 0 && top[i].raw > top[i-1].raw; i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > n {
			top = top[:n]
		}
	})
	return top
}

func printStats(st index.Stats) {
	capStr := strconv.Itoa(st.MaxPostings)
	if st.MaxPostings < 0 {
		capStr = "uncapped"
	}
	fmt.Printf("seed index: k=%d cap=%s\n", st.K, capStr)
	fmt.Printf("  database:       %d sequences, %d residues\n", st.NumTargets, st.TotalResidues)
	fmt.Printf("  distinct k-mers: %d (of %d possible)\n", st.DistinctKmers, index.PossibleKmers(st.K))
	fmt.Printf("  postings:       %d stored / %d raw, %d k-mers capped\n", st.Postings, st.RawPostings, st.CappedKmers)
	fmt.Printf("  footprint:      %.1f MiB\n", float64(st.FootprintBytes)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "indexbuild:", err)
	os.Exit(1)
}
