// Command seqclient is the bulk driver for seqserve's streaming
// protocol: it ships an NDJSON stream of queries to POST /search/stream
// over one connection and relays the result lines — out of order, as
// the server completes them — to stdout, with a throughput summary on
// stderr. It is also the reference client the CI smoke job diffs
// against single POSTs, so it can replay the same NDJSON input as one
// POST /search per line (-mode post), and it can generate deterministic
// NDJSON workloads from the same synthetic databases seqserve loads
// (-gen).
//
// Usage:
//
//	seqclient -gen 1000 -db synthetic:1000 > queries.ndjson
//	seqclient -addr localhost:8044 < queries.ndjson > results.ndjson
//	seqclient -addr localhost:8044 -mode post < queries.ndjson   # same answers, one POST each
//	seqclient -gen 200 -bulk-mode all_vs_all | seqclient -addr localhost:8044
//	seqclient -addr localhost:8044 -latency-out lat.ndjson < queries.ndjson
//
// Exit status is 0 when the protocol completed: in stream mode that
// means the server's terminal line arrived (clean EOF or an orderly
// cutoff like draining), in post mode that every input line was
// answered. A connection that dies without a terminal line exits 1.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bio"
	"repro/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", "localhost:8044", "seqserve address (host:port)")
		mode = flag.String("mode", "stream", "transport: stream (one /search/stream connection) or post (one /search POST per line)")
		in   = flag.String("in", "-", "NDJSON request input (- = stdin)")

		genN   = flag.Int("gen", 0, "generate this many NDJSON request lines on stdout instead of driving a server")
		dbArg  = flag.String("db", "synthetic:1000", "query source for -gen: FASTA file path or synthetic:<n> (match the server's -db/-seed)")
		dbSeed = flag.Int64("seed", 20061001, "synthetic database generator seed for -gen")

		latencyOut = flag.String("latency-out", "",
			"record one NDJSON line per completed request (id, bytes, us, error) to this file — the raw material for offline latency analysis")

		retriesFlag = flag.Int("retries", 0,
			"retry a refused request this many times (exponential backoff with jitter, honoring Retry-After) on 429, 503 or a connection error; in stream mode only the connection attempt is retried, and only before any input was consumed")
		retryMaxWait = flag.Duration("retry-max-wait", time.Second, "cap on one retry backoff wait")

		kFlag      = flag.Int("k", 5, "top-k for generated queries")
		kernel     = flag.String("kernel", "", "kernel for generated queries (empty = server default)")
		exhaustive = flag.Bool("exhaustive", false, "generate exhaustive-scan queries")
		bulkMode   = flag.String("bulk-mode", "", `mode field for generated lines: "" or `+server.StreamModeAllVsAll)
		queryLen   = flag.Int("query-len", 0, "truncate generated queries to this many residues (0 = whole sequence)")
	)
	flag.Parse()

	if *genN > 0 {
		if err := generate(os.Stdout, *genN, *dbArg, *dbSeed, *kFlag, *kernel, *exhaustive, *bulkMode, *queryLen); err != nil {
			fatal(err)
		}
		return
	}

	input := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}

	var lat *latencyLog
	if *latencyOut != "" {
		f, err := os.Create(*latencyOut)
		if err != nil {
			fatal(err)
		}
		lat = newLatencyLog(f)
		defer func() {
			if err := lat.close(); err != nil {
				fatal(fmt.Errorf("flushing -latency-out: %w", err))
			}
		}()
	}

	pol := retryPolicy{max: *retriesFlag, maxWait: *retryMaxWait}
	var err error
	switch *mode {
	case "stream":
		err = driveStream(*addr, input, lat, pol)
	case "post":
		err = drivePost(*addr, input, lat, pol)
	default:
		err = fmt.Errorf("unknown -mode %q (stream or post)", *mode)
	}
	if err != nil {
		fatal(err)
	}
}

// latencyRecord is one -latency-out line: what the client observed for
// one request. In post mode us spans the whole POST round trip; in
// stream mode it runs from the moment the line was handed to the HTTP
// transport to the moment its result line arrived (us = -1 when the
// server answered an id the tracker never saw go out). bytes is the
// response size; error is the server's error code, empty on success.
type latencyRecord struct {
	ID    string `json:"id"`
	Bytes int    `json:"bytes"`
	Us    int64  `json:"us"`
	Error string `json:"error,omitempty"`
}

type latencyLog struct {
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

func newLatencyLog(f *os.File) *latencyLog {
	bw := bufio.NewWriter(f)
	return &latencyLog{f: f, bw: bw, enc: json.NewEncoder(bw)}
}

func (l *latencyLog) write(rec latencyRecord) {
	if l == nil {
		return
	}
	if err := l.enc.Encode(&rec); err != nil {
		fatal(fmt.Errorf("writing -latency-out: %w", err))
	}
}

func (l *latencyLog) close() error {
	if l == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// sendTracker wraps the stream request body and stamps the moment each
// complete input line passes to the HTTP transport — the closest thing
// a pipelined client has to a per-request send time. The transport
// reads on its own goroutine while main drains responses, so the stamp
// map is mutex-guarded.
type sendTracker struct {
	r       io.Reader
	mu      sync.Mutex
	sent    map[string]time.Time
	partial []byte
}

func (t *sendTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.stampLines(p[:n])
	}
	return n, err
}

func (t *sendTracker) stampLines(b []byte) {
	now := time.Now()
	for {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			t.partial = append(t.partial, b...)
			return
		}
		line := b[:i]
		if len(t.partial) > 0 {
			line = append(t.partial, line...)
			t.partial = t.partial[:0]
		}
		var hdr struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(line, &hdr) == nil && hdr.ID != "" {
			t.mu.Lock()
			t.sent[hdr.ID] = now
			t.mu.Unlock()
		}
		b = b[i+1:]
	}
}

func (t *sendTracker) sinceSent(id string, now time.Time) int64 {
	t.mu.Lock()
	ts, ok := t.sent[id]
	t.mu.Unlock()
	if !ok {
		return -1
	}
	return now.Sub(ts).Microseconds()
}

// generate writes n deterministic StreamRequest lines: queries cycle
// through the database's own sequences, so every line has real homologs
// to find and two generations with the same flags are byte-identical.
func generate(w io.Writer, n int, dbArg string, seed int64, k int, kernel string, exhaustive bool, bulkMode string, queryLen int) error {
	db, err := bio.LoadDatabase(dbArg, seed, 0, nil)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for i := 0; i < n; i++ {
		q := bio.Decode(db.Seqs[i%db.NumSeqs()].Residues)
		if queryLen > 0 && len(q) > queryLen {
			q = q[:queryLen]
		}
		req := server.StreamRequest{
			ID:   fmt.Sprintf("q%06d", i),
			Mode: bulkMode,
			SearchRequest: server.SearchRequest{
				Query:      q,
				Kernel:     kernel,
				K:          k,
				Exhaustive: exhaustive,
			},
		}
		if err := enc.Encode(&req); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// retryPolicy is the client-side mirror of the server fleet's backoff
// contract: max extra attempts, full-jitter exponential waits capped at
// maxWait, with a Retry-After header as the floor when the server sent
// one. Retryable refusals are 429 (shed), 503 (draining/starting) and
// transport errors (connection refused while a server restarts).
type retryPolicy struct {
	max     int
	maxWait time.Duration
}

const retryBaseWait = 25 * time.Millisecond

func (p retryPolicy) wait(attempt, retryAfterSecs int) time.Duration {
	ceil := retryBaseWait << uint(attempt-1)
	if ceil > p.maxWait || ceil <= 0 {
		ceil = p.maxWait
	}
	wait := time.Duration(rand.Int63n(int64(ceil) + 1))
	if floor := time.Duration(retryAfterSecs) * time.Second; wait < floor {
		wait = floor
	}
	return wait
}

func retryAfterSecs(resp *http.Response) int {
	if resp == nil {
		return 0
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return secs
	}
	return 0
}

func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// countingReader counts how much of the stream input the transport has
// consumed: a stream connection may only be retried while this is still
// zero (the body is a one-shot pipe; replaying a half-sent stream would
// duplicate queries).
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// driveStream ships the whole input as one /search/stream body and
// relays response lines verbatim. The input reader is the request body,
// so a slow producer (a paused pipe) exercises the server's stall
// accounting and a fast one its flow-control window.
func driveStream(addr string, input io.Reader, lat *latencyLog, pol retryPolicy) error {
	start := time.Now()
	var tracker *sendTracker
	if lat != nil {
		tracker = &sendTracker{r: input, sent: make(map[string]time.Time)}
		input = tracker
	}
	counted := &countingReader{r: input}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/search/stream", io.Reader(counted))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err = http.DefaultClient.Do(req)
		// Retry only refusals that happened before any input was
		// consumed: once bytes are on the wire the stream cannot be
		// replayed without duplicating queries.
		retryable := err != nil || retryableStatus(resp.StatusCode)
		if !retryable || attempt >= pol.max || counted.n.Load() > 0 {
			if err != nil {
				return err
			}
			break
		}
		ra := retryAfterSecs(resp)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		wait := pol.wait(attempt+1, ra)
		fmt.Fprintf(os.Stderr, "seqclient: stream refused (attempt %d/%d), retrying in %v\n", attempt+1, pol.max, wait.Round(time.Millisecond))
		time.Sleep(wait)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server refused the stream: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var results, errLines int64
	var terminal *server.StreamResult
	for sc.Scan() {
		out.Write(sc.Bytes())
		out.WriteByte('\n')
		var line server.StreamResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("undecodable response line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Terminal:
			terminal = &line
		case line.Error != "":
			errLines++
		default:
			results++
		}
		if lat != nil && !line.Terminal && line.ID != "" {
			lat.write(latencyRecord{
				ID:    line.ID,
				Bytes: len(sc.Bytes()),
				Us:    tracker.sinceSent(line.ID, time.Now()),
				Error: line.Error,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stream: %w", err)
	}
	out.Flush()
	if terminal == nil {
		return fmt.Errorf("stream ended after %d lines without a terminal line", results+errLines)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "seqclient: stream: %d results, %d errors in %v (%.1f qps)\n",
		results, errLines, elapsed.Round(time.Millisecond), float64(results)/elapsed.Seconds())
	if terminal.Error != "" {
		fmt.Fprintf(os.Stderr, "seqclient: stream cut off by server: %s (%s) after %d/%d lines\n",
			terminal.Error, terminal.Detail, terminal.Results+terminal.Errors, terminal.Lines)
	}
	return nil
}

// drivePost replays the same NDJSON input as sequential single POSTs —
// the bit-identity reference the streaming protocol is measured
// against. Output lines carry the same fields as stream result lines
// (minus the terminal line) so the two transports diff cleanly once
// took_us/cached are stripped.
func drivePost(addr string, input io.Reader, lat *latencyLog, pol retryPolicy) error {
	start := time.Now()
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	sc := bufio.NewScanner(input)
	sc.Buffer(make([]byte, 0, 1<<20), 2<<20)
	var results, errLines int64
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var req server.StreamRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			return fmt.Errorf("input line %q: %v", sc.Text(), err)
		}
		if req.Mode == server.StreamModeAllVsAll {
			// all_vs_all is a scheduling hint; its single-POST
			// equivalent is a plain exhaustive scan.
			req.Exhaustive = true
		}
		body, err := json.Marshal(&req.SearchRequest)
		if err != nil {
			return err
		}
		reqStart := time.Now()
		var resp *http.Response
		for attempt := 0; ; attempt++ {
			resp, err = http.Post("http://"+addr+"/search", "application/json", bytes.NewReader(body))
			retryable := err != nil || retryableStatus(resp.StatusCode)
			if !retryable || attempt >= pol.max {
				break
			}
			ra := retryAfterSecs(resp)
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(pol.wait(attempt+1, ra))
		}
		if err != nil {
			return fmt.Errorf("id %s: %w", req.ID, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("id %s: reading response: %w", req.ID, err)
		}
		tookUs := time.Since(reqStart).Microseconds()
		if resp.StatusCode != http.StatusOK {
			var e server.ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil {
				return fmt.Errorf("id %s: status %d: %s", req.ID, resp.StatusCode, bytes.TrimSpace(raw))
			}
			lat.write(latencyRecord{ID: req.ID, Bytes: len(raw), Us: tookUs, Error: e.Error})
			errLines++
			if err := enc.Encode(map[string]string{"id": req.ID, "error": e.Error, "detail": e.Detail}); err != nil {
				return err
			}
			continue
		}
		var sr server.SearchResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			return fmt.Errorf("id %s: decoding response: %w", req.ID, err)
		}
		lat.write(latencyRecord{ID: req.ID, Bytes: len(raw), Us: tookUs})
		results++
		if err := enc.Encode(&server.StreamResult{ID: req.ID, SearchResponse: sr}); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading input: %w", err)
	}
	out.Flush()
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "seqclient: post: %d results, %d errors in %v (%.1f qps)\n",
		results, errLines, elapsed.Round(time.Millisecond), float64(results)/elapsed.Seconds())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqclient:", err)
	os.Exit(1)
}
