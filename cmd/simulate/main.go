// Command simulate runs one workload trace through the out-of-order
// processor model at a chosen configuration and reports the paper's
// per-run metrics: IPC, cache and branch statistics, the trauma
// distribution, and queue occupancies.
//
// Usage:
//
//	simulate -app blast -width 4 -mem 0
//	simulate -app ssearch34 -bp perfect -seqs 16 -cap 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	var (
		app     = flag.String("app", "ssearch34", "workload: "+strings.Join(workloads.Names, " | "))
		seqs    = flag.Int("seqs", 16, "database sequences")
		cap     = flag.Uint64("cap", 2_000_000, "max trace instructions simulated (0 = all)")
		traceIn = flag.String("tracefile", "", "simulate this binary trace (from tracegen -o) instead of generating")
		width   = flag.Int("width", 4, "machine width: 4, 8, 12 or 16 (Table IV)")
		memIdx  = flag.Int("mem", 0, "memory configuration index into Table V (0=me1 .. 4=meinf)")
		bp      = flag.String("bp", "gp", "branch predictor: gp | gshare | bimodal | perfect")
		bpSize  = flag.Int("bpentries", 16384, "predictor table entries")
		dl1lat  = flag.Int("dl1lat", 1, "DL1 hit latency (Figure 7 sweeps this)")
		traumas = flag.Int("traumas", 10, "number of trauma classes to print")
	)
	flag.Parse()

	mems := uarch.MemoryConfigs()
	if *memIdx < 0 || *memIdx >= len(mems) {
		fmt.Fprintln(os.Stderr, "simulate: -mem must be 0..4")
		os.Exit(1)
	}
	cfg := uarch.ConfigByWidth(*width).WithMemory(mems[*memIdx]).WithPredictor(*bp, *bpSize)
	cfg.Mem.DL1.Latency = *dl1lat

	var insts []isa.Inst
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		insts, err = trace.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		*app = *traceIn
	} else {
		spec := workloads.PaperSpec(*seqs)
		w, err := workloads.New(*app, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		var rec trace.Recorder
		limit := *cap
		if limit == 0 {
			limit = 1 << 62
		}
		w.Trace(&trace.LimitSink{Inner: &rec, Limit: limit})
		insts = rec.Insts
	}

	res, err := uarch.New(cfg).Run(trace.NewReplay(insts))
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s / %s / %s(%d entries)\n", *app, cfg.Name, mems[*memIdx].Name, *bp, *bpSize)
	fmt.Printf("  instructions  %12d\n", res.Retired)
	fmt.Printf("  cycles        %12d\n", res.Cycles)
	fmt.Printf("  IPC           %12.3f\n", res.IPC)
	fmt.Printf("  DL1 miss rate %11.2f%%  (%d / %d)\n", 100*res.DL1MissRate, res.DL1Misses, res.DL1Accesses)
	fmt.Printf("  L2 misses     %12d\n", res.L2Misses)
	fmt.Printf("  BP accuracy   %11.2f%%  (%d mispredicts / %d cond branches)\n",
		100*res.PredAccuracy, res.Mispredicts, res.CondBranches)
	fmt.Printf("  mean in-flight %10.1f instructions\n", uarch.MeanOccupancy(res.InflightOcc))
	fmt.Printf("top traumas (of %d total stall cycles):\n", res.Cycles-res.ProgressCycles)
	for _, tc := range res.TopTraumas(*traumas) {
		fmt.Printf("  %-10v %10d  %5.1f%%\n", tc.Trauma, tc.Cycles, 100*float64(tc.Cycles)/float64(res.Cycles))
	}
	fmt.Println("issue queue mean occupancy:")
	for q := uarch.UnitClass(0); q < uarch.NumUnitClasses; q++ {
		occ := uarch.MeanOccupancy(res.QueueOcc[q])
		if occ > 0.005 {
			fmt.Printf("  %-7v %6.2f\n", q, occ)
		}
	}
}
