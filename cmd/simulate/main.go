// Command simulate runs one workload trace through the out-of-order
// processor model and reports the paper's per-run metrics: IPC, cache
// and branch statistics, the trauma distribution, and queue
// occupancies.
//
// It can sweep several machine widths in one invocation (-widths); the
// trace is then either streamed from a file — one independent
// fixed-memory reader per configuration, so peak memory never depends
// on trace length — or generated exactly once and broadcast to all
// simulations concurrently.
//
// Usage:
//
//	simulate -app blast -width 4 -mem 0
//	simulate -app ssearch34 -bp perfect -seqs 16 -cap 1000000
//	simulate -app fasta34 -widths 4,8,16            # one capture pass, three machines
//	simulate -tracefile ssearch.trc -widths 4,8,16 -workers 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	var (
		app      = flag.String("app", "ssearch34", "workload: "+strings.Join(workloads.Names, " | "))
		seqs     = flag.Int("seqs", 16, "database sequences")
		traceCap = flag.Uint64("cap", 2_000_000, "max trace instructions simulated (0 = all)")
		traceIn  = flag.String("tracefile", "", "simulate this binary trace (from tracegen -o) instead of generating")
		width    = flag.Int("width", 4, "machine width: 4, 8, 12 or 16 (Table IV)")
		widths   = flag.String("widths", "", "comma-separated width sweep (e.g. 4,8,16); overrides -width")
		workers  = flag.Int("workers", 0, "concurrent simulations for -tracefile sweeps (0 = all at once)")
		memIdx   = flag.Int("mem", 0, "memory configuration index into Table V (0=me1 .. 4=meinf)")
		bp       = flag.String("bp", "gp", "branch predictor: gp | gshare | bimodal | perfect")
		bpSize   = flag.Int("bpentries", 16384, "predictor table entries")
		dl1lat   = flag.Int("dl1lat", 1, "DL1 hit latency (Figure 7 sweeps this)")
		traumas  = flag.Int("traumas", 10, "number of trauma classes to print")
	)
	flag.Parse()

	mems := uarch.MemoryConfigs()
	if *memIdx < 0 || *memIdx >= len(mems) {
		fmt.Fprintln(os.Stderr, "simulate: -mem must be 0..4")
		os.Exit(1)
	}
	widthList := []int{*width}
	if *widths != "" {
		widthList = nil
		for _, s := range strings.Split(*widths, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || (w != 4 && w != 8 && w != 12 && w != 16) {
				fmt.Fprintf(os.Stderr, "simulate: bad -widths entry %q (want 4, 8, 12 or 16)\n", s)
				os.Exit(1)
			}
			widthList = append(widthList, w)
		}
	}
	cfgs := make([]uarch.Config, len(widthList))
	for i, w := range widthList {
		cfg := uarch.ConfigByWidth(w).WithMemory(mems[*memIdx]).WithPredictor(*bp, *bpSize)
		cfg.Mem.DL1.Latency = *dl1lat
		cfgs[i] = cfg
	}

	label := *app
	var results []*uarch.Result
	var err error
	if *traceIn != "" {
		label = *traceIn
		results, err = simulateFromFile(*traceIn, cfgs, *workers)
	} else {
		results, err = simulateGenerated(*app, *seqs, *traceCap, cfgs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	for i, res := range results {
		report(label, cfgs[i], mems[*memIdx].Name, *bp, *bpSize, res, *traumas)
		if i < len(results)-1 {
			fmt.Println()
		}
	}
}

// simulateFromFile streams the trace file into each configuration
// through its own reader: per-simulation memory is a fixed 1 MiB
// buffer regardless of how many instructions the file holds.
func simulateFromFile(path string, cfgs []uarch.Config, workers int) ([]*uarch.Result, error) {
	if workers <= 0 || workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*uarch.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f, err := os.Open(path)
			if err != nil {
				errs[i] = err
				return
			}
			defer f.Close()
			src, err := trace.NewFileSource(f)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := uarch.New(cfgs[i]).Run(src)
			if err != nil {
				errs[i] = err
				return
			}
			if err := src.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// simulateGenerated captures the workload once and broadcasts the
// stream to every configuration's pipeline concurrently — the paper's
// capture-once, simulate-many workflow in a single process, without
// ever materializing the trace.
func simulateGenerated(app string, seqs int, traceCap uint64, cfgs []uarch.Config) ([]*uarch.Result, error) {
	spec := workloads.PaperSpec(seqs)
	w, err := workloads.New(app, spec)
	if err != nil {
		return nil, err
	}
	bc := trace.NewBroadcast(len(cfgs))
	results := make([]*uarch.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, src := range bc.Sources() {
		wg.Add(1)
		go func(i int, src *trace.BroadcastCursor) {
			defer wg.Done()
			defer src.Close() // unblock the generator if this sim dies early
			results[i], errs[i] = uarch.New(cfgs[i]).Run(src)
		}(i, src)
	}
	w.Trace(&trace.LimitSink{Inner: bc, Limit: traceCap})
	bc.CloseSend()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func report(label string, cfg uarch.Config, memName, bp string, bpSize int, res *uarch.Result, traumas int) {
	fmt.Printf("%s on %s / %s / %s(%d entries)\n", label, cfg.Name, memName, bp, bpSize)
	fmt.Printf("  instructions  %12d\n", res.Retired)
	fmt.Printf("  cycles        %12d\n", res.Cycles)
	fmt.Printf("  IPC           %12.3f\n", res.IPC)
	fmt.Printf("  DL1 miss rate %11.2f%%  (%d / %d)\n", 100*res.DL1MissRate, res.DL1Misses, res.DL1Accesses)
	fmt.Printf("  L2 misses     %12d\n", res.L2Misses)
	fmt.Printf("  BP accuracy   %11.2f%%  (%d mispredicts / %d cond branches)\n",
		100*res.PredAccuracy, res.Mispredicts, res.CondBranches)
	fmt.Printf("  mean in-flight %10.1f instructions\n", uarch.MeanOccupancy(res.InflightOcc))
	fmt.Printf("top traumas (of %d total stall cycles):\n", res.Cycles-res.ProgressCycles)
	for _, tc := range res.TopTraumas(traumas) {
		fmt.Printf("  %-10v %10d  %5.1f%%\n", tc.Trauma, tc.Cycles, 100*float64(tc.Cycles)/float64(res.Cycles))
	}
	fmt.Println("issue queue mean occupancy:")
	for q := uarch.UnitClass(0); q < uarch.NumUnitClasses; q++ {
		occ := uarch.MeanOccupancy(res.QueueOcc[q])
		if occ > 0.005 {
			fmt.Printf("  %-7v %6.2f\n", q, occ)
		}
	}
}
