// Command loadgen drives a running seqserve with open-loop scenarios
// (fixed arrival rate or a linear ramp, Zipf-popular queries) and
// reports client-observed tail latency: p50/p95/p99/max per scenario,
// the coefficient of variation across repeated runs, and a cross-check
// of the client's median against the server's own /metrics histogram —
// the two sides bin latencies identically, so their medians must land
// within a sub-bucket of each other when the harness is honest.
//
// Usage:
//
//	seqserve -db synthetic:300 -addr localhost:8044 &
//	loadgen -addr localhost:8044 -db synthetic:300 -rate 150 -duration 5s -runs 3
//	loadgen -addr localhost:8044 -db synthetic:300 \
//	    -scenarios 'steady=120@4s;burst=400@2s;ramp=50-400@5s' \
//	    -report SLOREPORT.md -json loadgen.json -max-p99 250ms
//
// Exit status is 0 when every gate passed: -max-p99 caps each
// scenario's mean p99, and -require-agreement fails the run when the
// client and server medians disagree beyond one sub-bucket (plus a
// small absolute floor for client-side RTT). The slo-smoke CI job runs
// exactly this and commits the report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bio"
	"repro/internal/loadgen"
	"repro/internal/obs"
)

// scenario is one parsed -scenarios entry.
type scenario struct {
	Name     string        `json:"name"`
	Rate     float64       `json:"rate"`
	RampTo   float64       `json:"ramp_to,omitempty"`
	Duration time.Duration `json:"-"`
}

// scenarioReport is one scenario's outcome in the JSON output.
type scenarioReport struct {
	Scenario  scenario         `json:"scenario"`
	DurationS float64          `json:"duration_s"`
	Runs      []loadgen.Result `json:"runs"`
	Summary   loadgen.Summary  `json:"summary"`
}

type report struct {
	Addr      string            `json:"addr"`
	DB        string            `json:"db"`
	Queries   int               `json:"queries"`
	ZipfS     float64           `json:"zipf_s"`
	Scenarios []scenarioReport  `json:"scenarios"`
	Agreement loadgen.Agreement `json:"metrics_agreement"`
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:8044", "seqserve address (host:port)")
		dbArg    = flag.String("db", "synthetic:300", "query corpus source: FASTA file path or synthetic:<n> (match the server's -db/-seed)")
		dbSeed   = flag.Int64("seed", 20061001, "synthetic database generator seed")
		nQueries = flag.Int("queries", 64, "corpus size: distinct queries drawn from the database")
		queryLen = flag.Int("query-len", 120, "truncate corpus queries to this many residues (0 = whole sequence)")

		rate     = flag.Float64("rate", 100, "offered arrival rate, requests/s (single-scenario mode)")
		rampTo   = flag.Float64("ramp-to", 0, "ramp the rate linearly to this value over the run (0 = constant)")
		duration = flag.Duration("duration", 5*time.Second, "arrival-generation window per run")
		runsN    = flag.Int("runs", 3, "repeat each scenario this many times; the p99 spread across runs is the reported CV")
		specs    = flag.String("scenarios", "", "semicolon-separated scenario list name=rate[-rampto]@duration (overrides -rate/-ramp-to/-duration)")

		zipfS   = flag.Float64("zipf-s", loadgen.DefaultZipfS, "Zipf popularity exponent over the corpus (> 1; larger = hotter head)")
		genSeed = flag.Int64("gen-seed", 1, "seed for the popularity draws (same seed = identical offered sequence)")
		kFlag   = flag.Int("k", 5, "top-k per request")
		kernel  = flag.String("kernel", "", "kernel per request (empty = server default)")
		timeout = flag.Duration("timeout", loadgen.DefaultTimeout, "per-request timeout; slower requests count as errors")

		reportOut = flag.String("report", "", "write the markdown SLO report here (empty = stdout summary only)")
		jsonOut   = flag.String("json", "", "write the full JSON report here")
		maxP99    = flag.Duration("max-p99", 0, "fail when any scenario's mean p99 exceeds this (0 disables) — the SLO gate")
		reqAgree  = flag.Bool("require-agreement", true, "fail when client and server /metrics medians disagree beyond one sub-bucket")
	)
	flag.Parse()

	scenarios, err := parseScenarios(*specs, *rate, *rampTo, *duration)
	if err != nil {
		fatal(err)
	}
	queries, err := corpus(*dbArg, *dbSeed, *nQueries, *queryLen)
	if err != nil {
		fatal(err)
	}

	rep := report{Addr: *addr, DB: *dbArg, Queries: len(queries), ZipfS: *zipfS}
	base := "http://" + *addr
	ctx := context.Background()
	var allSnaps []obs.HistSnapshot
	for _, sc := range scenarios {
		var runs []loadgen.Result
		for run := 0; run < *runsN; run++ {
			res, err := loadgen.Run(ctx, loadgen.Config{
				BaseURL:  base,
				Rate:     sc.Rate,
				RampTo:   sc.RampTo,
				Duration: sc.Duration,
				Queries:  queries,
				ZipfS:    *zipfS,
				Seed:     *genSeed, // same seed every run: CV measures the system, not the workload
				K:        *kFlag,
				Kernel:   *kernel,
				Timeout:  *timeout,
			})
			if err != nil {
				fatal(fmt.Errorf("scenario %s run %d: %w", sc.Name, run+1, err))
			}
			runs = append(runs, res)
			allSnaps = append(allSnaps, res.Latency)
			fmt.Printf("loadgen: %-8s run %d/%d: %d/%d ok, p50 %s p95 %s p99 %s max %s (%.1f qps achieved)\n",
				sc.Name, run+1, *runsN, res.OK, res.Sent,
				us(res.P50Us), us(res.P95Us), us(res.P99Us), us(res.MaxUs), res.AchievedQPS)
		}
		rep.Scenarios = append(rep.Scenarios, scenarioReport{
			Scenario:  sc,
			DurationS: sc.Duration.Seconds(),
			Runs:      runs,
			Summary:   loadgen.Summarize(runs),
		})
	}

	// Cross-check the merged client view against the server's own
	// histogram. The comparison assumes this loadgen was the dominant
	// traffic since the server started (true for the CI smoke job,
	// which boots a fresh server per run).
	exp, err := loadgen.ScrapeMetrics(ctx, nil, base)
	if err != nil {
		fatal(fmt.Errorf("scraping %s/metrics: %w", base, err))
	}
	merged := loadgen.Merge(allSnaps...)
	rep.Agreement, err = loadgen.CompareMedian(merged, exp, "seqserve_request_latency_us", 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: client p50 %s (bucket %d) vs server p50 %s (bucket %d): agree=%v\n",
		us(rep.Agreement.ClientP50Us), rep.Agreement.ClientBucket,
		us(rep.Agreement.ServerP50Us), rep.Agreement.ServerBucket, rep.Agreement.Agrees)

	if *reportOut != "" {
		if err := os.WriteFile(*reportOut, []byte(markdown(rep)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: wrote %s\n", *reportOut)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: wrote %s\n", *jsonOut)
	}

	failed := false
	if *maxP99 > 0 {
		limit := float64(maxP99.Microseconds())
		for _, sr := range rep.Scenarios {
			if sr.Summary.P99MeanUs > limit {
				fmt.Fprintf(os.Stderr, "loadgen: SLO VIOLATION: scenario %s mean p99 %.0fµs exceeds %v\n",
					sr.Scenario.Name, sr.Summary.P99MeanUs, *maxP99)
				failed = true
			}
		}
	}
	if *reqAgree && !rep.Agreement.Agrees {
		fmt.Fprintf(os.Stderr, "loadgen: client/server median disagreement: client %dµs (bucket %d) vs server %dµs (bucket %d)\n",
			rep.Agreement.ClientP50Us, rep.Agreement.ClientBucket,
			rep.Agreement.ServerP50Us, rep.Agreement.ServerBucket)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// parseScenarios turns "steady=120@4s;ramp=50-400@5s" into scenarios;
// an empty spec builds one scenario from the individual flags.
func parseScenarios(spec string, rate, rampTo float64, d time.Duration) ([]scenario, error) {
	if spec == "" {
		name := "steady"
		if rampTo > 0 {
			name = "ramp"
		}
		return []scenario{{Name: name, Rate: rate, RampTo: rampTo, Duration: d}}, nil
	}
	var out []scenario
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		at := strings.LastIndexByte(part, '@')
		if eq < 1 || at < eq {
			return nil, fmt.Errorf("loadgen: bad scenario %q (want name=rate[-rampto]@duration)", part)
		}
		sc := scenario{Name: part[:eq]}
		rates := part[eq+1 : at]
		var err error
		if dash := strings.IndexByte(rates, '-'); dash >= 0 {
			if sc.Rate, err = strconv.ParseFloat(rates[:dash], 64); err != nil {
				return nil, fmt.Errorf("loadgen: bad rate in %q: %v", part, err)
			}
			if sc.RampTo, err = strconv.ParseFloat(rates[dash+1:], 64); err != nil {
				return nil, fmt.Errorf("loadgen: bad ramp target in %q: %v", part, err)
			}
		} else if sc.Rate, err = strconv.ParseFloat(rates, 64); err != nil {
			return nil, fmt.Errorf("loadgen: bad rate in %q: %v", part, err)
		}
		if sc.Duration, err = time.ParseDuration(part[at+1:]); err != nil {
			return nil, fmt.Errorf("loadgen: bad duration in %q: %v", part, err)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: -scenarios %q holds no scenarios", spec)
	}
	return out, nil
}

// corpus draws the query set from the same database the server loads,
// so every request has real homologs to rank.
func corpus(dbArg string, seed int64, n, maxLen int) ([]string, error) {
	db, err := bio.LoadDatabase(dbArg, seed, 0, nil)
	if err != nil {
		return nil, err
	}
	if n > db.NumSeqs() {
		n = db.NumSeqs()
	}
	queries := make([]string, 0, n)
	for i := 0; i < n; i++ {
		q := bio.Decode(db.Seqs[i].Residues)
		if maxLen > 0 && len(q) > maxLen {
			q = q[:maxLen]
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// markdown renders the committed SLOREPORT.md.
func markdown(rep report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# SLO report\n\n")
	fmt.Fprintf(&b, "Open-loop load against seqserve at `%s` (corpus: %d queries from `%s`, Zipf s=%.2f).\n",
		rep.Addr, rep.Queries, rep.DB, rep.ZipfS)
	fmt.Fprintf(&b, "Generated by `cmd/loadgen`; arrival times are fixed up front, so queueing\ndelay under saturation lands in the recorded tail instead of silently\nthrottling the offered load (no coordinated omission).\n\n")
	fmt.Fprintf(&b, "| scenario | offered | runs | ok/sent | p50 | p95 | p99 (mean) | p99 CV | max |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	for _, sr := range rep.Scenarios {
		offered := fmt.Sprintf("%.0f/s x %.0fs", sr.Scenario.Rate, sr.DurationS)
		if sr.Scenario.RampTo > 0 {
			offered = fmt.Sprintf("%.0f→%.0f/s x %.0fs", sr.Scenario.Rate, sr.Scenario.RampTo, sr.DurationS)
		}
		var ok, sent int64
		var p50s, p95s []int64
		for _, r := range sr.Runs {
			ok += r.OK
			sent += r.Sent
			p50s = append(p50s, r.P50Us)
			p95s = append(p95s, r.P95Us)
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d/%d | %s | %s | %s | %.1f%% | %s |\n",
			sr.Scenario.Name, offered, len(sr.Runs), ok, sent,
			us(median(p50s)), us(median(p95s)), us(int64(sr.Summary.P99MeanUs)),
			100*sr.Summary.P99CV, us(sr.Summary.MaxUs))
	}
	a := rep.Agreement
	fmt.Fprintf(&b, "\n## Client/server agreement\n\n")
	fmt.Fprintf(&b, "Client median %s (bucket %d) vs server `/metrics` median %s (bucket %d): **%s**.\n",
		us(a.ClientP50Us), a.ClientBucket, us(a.ServerP50Us), a.ServerBucket, map[bool]string{true: "agree", false: "DISAGREE"}[a.Agrees])
	fmt.Fprintf(&b, "Both sides aggregate into the same log-linear histogram (internal/obs,\n4 sub-buckets per power of two), so agreement within one sub-bucket —\nor within %dµs of client-side RTT overhead — validates the harness\nagainst the server's own accounting.\n", a.FloorUs)
	return b.String()
}

// median of a small int64 slice (reports only).
func median(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// us renders a microsecond count human-first.
func us(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(v)/1e6)
	case v >= 1000:
		return fmt.Sprintf("%.1fms", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dµs", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
