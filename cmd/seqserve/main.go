// Command seqserve is the long-lived alignment search service: it
// loads a protein database and a seed index once at startup, then
// serves deterministic top-K searches over HTTP until SIGTERM/SIGINT,
// when it drains gracefully (stop accepting, finish in-flight
// requests, flush final stats) and exits 0.
//
// Usage:
//
//	seqserve -db synthetic:1000 -related 20 -addr :8044
//	seqserve -db swissprot.fasta -index sp.seqidx -workers 8
//	seqserve -snapshot sp.snap                      # fast boot: mmap db+index in one file
//	curl -s localhost:8044/healthz
//	curl -s -d '{"query":"MTDKL...","k":5}' localhost:8044/search
//	seqclient -gen 1000 | seqclient -addr localhost:8044   # bulk NDJSON over /search/stream
//	curl -s localhost:8044/statsz
//	curl -s -X POST -d '{"path":"sp.v2.snap"}' localhost:8044/admin/reload   # hot swap, zero downtime
//	kill -HUP $(pidof seqserve)                     # re-open the last snapshot path
//
// The endpoints and the pipeline behind them (admission ->
// micro-batch -> shard -> rescore -> rank -> cache) are documented in
// internal/server and DESIGN.md's "Search service" section.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bio"
	"repro/internal/faults"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/snapshot"
)

func main() {
	var (
		dbArg   = flag.String("db", "synthetic:1000", "database: FASTA file path or synthetic:<n>")
		dbSeed  = flag.Int64("seed", 20061001, "synthetic database generator seed")
		related = flag.Int("related", 0, "plant this many homologs in a synthetic database")
		parent  = flag.String("parent", "P14942", "Table II accession the planted homologs derive from")

		indexArg = flag.String("index", "build",
			"seed index: an indexbuild file, 'build' to index in-process at startup, or 'none' for exhaustive-only")
		kFlag = flag.Int("k", index.DefaultK, "k-mer length when -index build")

		snapArg = flag.String("snapshot", "",
			"boot from a SEQSNAP snapshot (indexbuild snapshot) instead of -db/-index: the file maps in db and index together, skipping the load and build entirely. Also the default artifact for POST /admin/reload and SIGHUP")
		snapVerify = flag.Bool("snapshot-verify", false,
			"checksum every snapshot section on open (catches torn copies; costs one pass over the file, against the fast-boot point of snapshots)")

		addr        = flag.String("addr", ":8044", "listen address")
		workers     = flag.Int("workers", 0, "scan worker pool size (0 = all CPUs)")
		kernel      = flag.String("kernel", "swar", "default scoring kernel for requests that pick none")
		cacheSize   = flag.Int("cache", server.DefaultCacheEntries, "LRU result cache entries (0 disables)")
		batchWindow = flag.Duration("batch-window", server.DefaultBatchWindow,
			"how long to hold a micro-batch open under concurrent load (0 disables the wait)")
		maxBatch  = flag.Int("max-batch", server.DefaultMaxBatch, "max requests coalesced into one batch")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight requests on shutdown")

		queueDepth = flag.Int("queue-depth", server.DefaultQueueDepth,
			"admission gate capacity in cost units (indexed request = 1, exhaustive = 8+ scaled per kernel); past it single POSTs are shed with 429 and streams pause")
		streamWindow = flag.Int("stream-window", server.DefaultStreamWindow,
			"per-connection /search/stream flow-control window: max queries decoded but not yet written back")
		streamStall = flag.Duration("stream-stall", server.DefaultStreamStall,
			"cut off a /search/stream client idle this long (neither feeding nor draining); 0 disables the cutoff")
		reqTimeout = flag.Duration("request-timeout", 0,
			"server-side cap on every request's deadline (0 = none); requests past it fail with 408 deadline_exceeded")
		drainGrace = flag.Duration("drain-grace", 0,
			"after SIGTERM, keep answering with 503/draining this long before closing the listener, so load balancers see the drain")
		shardArg = flag.String("shard", "",
			"serve only the contiguous database slice lo:hi (global target IDs, hi exclusive); hit indexes are shard-local — a seqrouter remaps them. Every replica of a shard must pass the same -db/-seed/-related and the same -shard")
		faultsSpec = flag.String("faults", "",
			"deterministic fault injection spec, site:key=val,...[;site:...] (sites: "+faults.SiteList()+") — chaos testing only")
		faultsSeed = flag.Uint64("faults-seed", 1, "seed for -faults rate schedules")

		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof plus /metrics and /debug/traces on this separate address (e.g. localhost:8045); empty disables the debug listener")
		traceRing = flag.Int("trace-ring", 0,
			"per-request trace ring capacity behind /debug/traces (0 = default)")
		logRequests = flag.Bool("log-requests", false,
			"emit one structured (slog) line per completed request, tagged with its trace id")
	)
	flag.Parse()

	// Bind the serving address BEFORE the (possibly long) database load
	// and index build, behind a swappable holding handler that answers
	// 503 "starting" on every path — including /healthz and /readyz —
	// until the real server is ready. Orchestrators and wait loops can
	// poll the port from the moment the process starts instead of racing
	// the index build for the bind; curl -sf fails on the 503 either
	// way, so existing wait-for-healthy loops are unchanged.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	var liveHandler atomic.Pointer[http.Handler]
	holding := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false,"reason":"starting"}`)
	}))
	liveHandler.Store(&holding)
	// The protocol-level timeouts cut off clients the request deadline
	// cannot see: a peer that never finishes its headers, trickles its
	// body (slowloris), or parks an idle keep-alive connection.
	httpSrv := &http.Server{
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { (*liveHandler.Load()).ServeHTTP(w, r) }),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	var (
		db   *bio.Database
		ix   *index.Index
		snap *snapshot.Snapshot
	)
	if *snapArg != "" {
		// The snapshot fast path: db and index come out of one
		// page-aligned file, mapped rather than parsed — no FASTA scan,
		// no index build. A snapshot is built for an exact database
		// (and, for shard fleets, an exact slice — indexbuild snapshot
		// -shard), so the slicing flags don't apply here.
		if *shardArg != "" {
			fatal(fmt.Errorf("-shard does not combine with -snapshot: build a per-shard artifact with 'indexbuild snapshot -shard %s' and serve that file; hit indexes are shard-local either way", *shardArg))
		}
		start := time.Now()
		var serr error
		snap, serr = snapshot.Open(*snapArg, snapshot.OpenOptions{Verify: *snapVerify})
		if serr != nil {
			fatal(fmt.Errorf("opening snapshot %s: %w", *snapArg, serr))
		}
		db, ix = snap.DB, snap.Index
		fmt.Printf("seqserve: snapshot %s version %q: %d sequences, %.1f MiB, mmap=%v, loaded in %v (a -db/-index boot reloads FASTA and rebuilds the index; compare cmd/benchsnap)\n",
			*snapArg, snap.Manifest.Version, db.NumSeqs(),
			float64(snap.SizeBytes())/(1<<20), snap.Mapped(),
			time.Since(start).Round(time.Microsecond))
	} else {
		var parentSeq *bio.Sequence
		if *related > 0 {
			parentSeq = bio.PaperQuery(*parent)
		}
		db, err = bio.LoadDatabase(*dbArg, *dbSeed, *related, parentSeq)
		if err != nil {
			fatal(err)
		}

		// -shard slices the loaded database to a contiguous target range;
		// the index (built or loaded) then covers exactly the slice. The
		// full database is still loaded first so every shard's slice comes
		// from the identical global ordering — that identity is what lets a
		// seqrouter remap shard-local hit indexes by adding lo.
		if *shardArg != "" {
			lo, hi, perr := parseShardRange(*shardArg, db.NumSeqs())
			if perr != nil {
				fatal(perr)
			}
			db = bio.NewDatabase(db.Seqs[lo:hi])
			fmt.Printf("seqserve: serving shard %d:%d (%d of the database's sequences)\n", lo, hi, db.NumSeqs())
		}

		switch *indexArg {
		case "none":
		case "build":
			if *kFlag < index.MinK || *kFlag > index.MaxK {
				fatal(fmt.Errorf("-k %d outside [%d, %d]", *kFlag, index.MinK, index.MaxK))
			}
			start := time.Now()
			ix = index.Build(db, index.Options{K: *kFlag})
			fmt.Printf("built seed index in %v (k=%d, %.1f MiB)\n",
				time.Since(start).Round(time.Millisecond), ix.K(),
				float64(ix.Stats().FootprintBytes)/(1<<20))
		default:
			f, err := os.Open(*indexArg)
			if err != nil {
				fatal(err)
			}
			ix, err = index.ReadIndex(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("loading index %s: %w", *indexArg, err))
			}
			// server.New validates the index fingerprint against db.
		}
	}

	// At the flag layer the defaults are already spelled out, so an
	// explicit 0 can only mean "off" — translate it to the Config
	// disable sentinel (where 0 means "use the default").
	if *cacheSize == 0 {
		*cacheSize = -1
	}
	if *batchWindow == 0 {
		*batchWindow = -1
	}
	if *streamStall == 0 {
		*streamStall = -1
	}
	reg, err := faults.ParseSpec(*faultsSpec, *faultsSeed)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		fmt.Printf("seqserve: FAULT INJECTION ARMED: %s (seed %d)\n", *faultsSpec, *faultsSeed)
	}
	var accessLog *slog.Logger
	if *logRequests {
		accessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv, err := server.New(db, ix, server.Config{
		Workers:            *workers,
		DefaultKernel:      *kernel,
		CacheEntries:       *cacheSize,
		BatchWindow:        *batchWindow,
		MaxBatch:           *maxBatch,
		QueueDepth:         *queueDepth,
		StreamWindow:       *streamWindow,
		StreamStallTimeout: *streamStall,
		RequestTimeout:     *reqTimeout,
		Faults:             reg,
		TraceRing:          *traceRing,
		AccessLog:          accessLog,
	})
	if err != nil {
		if ix != nil && *indexArg != "build" && *snapArg == "" {
			err = fmt.Errorf("%w (rebuild %s for this database, or pass the same -db/-seed/-related here and to indexbuild)", err, *indexArg)
		}
		fatal(err)
	}
	if snap != nil {
		// New built the first epoch unversioned; re-swap the same pair in
		// with the manifest's version stamp and the snapshot's Close as
		// the epoch release, so the mapping unmaps exactly when the last
		// in-flight request pinned to it finishes.
		if err := srv.Swap(snap.DB, snap.Index, snap.Manifest.Version, func() { snap.Close() }); err != nil {
			fatal(err)
		}
	}

	// Reloads — POST /admin/reload and SIGHUP — swap a new snapshot in
	// under live traffic. Serialized: a reload that loses the race simply
	// runs after the winner, and the path it loaded becomes the new
	// default for path-less reloads.
	var reloadMu sync.Mutex
	lastPath := *snapArg
	reload := func(path string) (snapshot.Manifest, time.Duration, error) {
		reloadMu.Lock()
		defer reloadMu.Unlock()
		if path == "" {
			path = lastPath
		}
		if path == "" {
			return snapshot.Manifest{}, 0, fmt.Errorf("no snapshot path: POST {\"path\":...} or start with -snapshot")
		}
		start := time.Now()
		ns, err := snapshot.Open(path, snapshot.OpenOptions{Verify: *snapVerify})
		if err != nil {
			return snapshot.Manifest{}, 0, err
		}
		old := srv.SnapshotVersion()
		if err := srv.Swap(ns.DB, ns.Index, ns.Manifest.Version, func() { ns.Close() }); err != nil {
			ns.Close()
			return snapshot.Manifest{}, 0, err
		}
		lastPath = path
		d := time.Since(start)
		fmt.Printf("seqserve: reloaded %s: snapshot version %q -> %q, %d sequences, in %v\n",
			path, old, ns.Manifest.Version, ns.DB.NumSeqs(), d.Round(time.Microsecond))
		return ns.Manifest, d, nil
	}

	// The debug listener is a separate address on purpose: pprof
	// profiles and raw trace dumps are operator tools, and binding them
	// to (say) localhost keeps them off the serving port without any
	// auth machinery. /metrics and /debug/traces are mirrored here so a
	// scraper needs only the debug port; they also remain on the main
	// mux for single-port deployments.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", srv.MetricsRegistry().Handler())
		dmux.Handle("/debug/traces", srv.TraceRing())
		dbgSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				// An operator who asked for the debug listener is
				// debugging; a silently-missing pprof port would waste
				// exactly that session.
				fatal(fmt.Errorf("debug listener: %w", err))
			}
		}()
		fmt.Printf("seqserve: debug listener (pprof, /metrics, /debug/traces) on %s\n", *debugAddr)
	}

	// Swap the real handler in: the listener has been up since before
	// the load, and from this store on /healthz and /readyz answer for
	// the real server. /admin/reload lives in this outer mux — snapshot
	// files are a deployment concern, so internal/server stays
	// snapshot-agnostic and only sees the Swap.
	outer := http.NewServeMux()
	outer.Handle("/", srv.Handler())
	outer.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			fmt.Fprintln(w, `{"error":"bad_method","detail":"POST /admin/reload with an optional {\"path\":...} body"}`)
			return
		}
		var body struct {
			Path string `json:"path"`
		}
		if r.ContentLength != 0 {
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": server.ErrBadRequest, "detail": err.Error()})
				return
			}
		}
		man, d, err := reload(body.Path)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "reload_failed", "detail": err.Error()})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"snapshot_version": man.Version,
			"num_seqs":         man.NumSeqs,
			"load_ms":          d.Milliseconds(),
		})
	})
	real := http.Handler(outer)
	liveHandler.Store(&real)
	fmt.Printf("seqserve: serving %d sequences (%d residues) on %s\n",
		db.NumSeqs(), db.TotalResidues(), ln.Addr())

	// SIGHUP is the classic "reload your config" signal: here it re-opens
	// the last snapshot path (new file contents, same name — the rename
	// publish idiom) without a connection's worth of downtime.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
waitLoop:
	for {
		select {
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if _, _, err := reload(""); err != nil {
					fmt.Fprintln(os.Stderr, "seqserve: SIGHUP reload failed, still serving the old snapshot:", err)
				}
				continue
			}
			fmt.Printf("seqserve: %v, draining\n", sig)
			break waitLoop
		case err := <-errCh:
			fatal(err) // the listener died before any signal
		}
	}

	// Graceful drain, in three steps. BeginDrain flips the service to
	// explicit refusal — new /search requests get 503/draining, queued
	// but unstarted jobs fail the same way, in-flight batches finish —
	// and the optional grace window keeps the listener up so load
	// balancers and health checks observe the 503s instead of
	// connection resets. Then Shutdown stops accepting and waits for
	// in-flight handlers; only after that may the batching pipeline
	// stop — none ever see a half-stopped pipeline.
	srv.BeginDrain()
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Handlers may still be mid-pipeline; stopping the dispatcher
		// and workers under them would panic or hang. Report the
		// failed drain honestly and exit non-zero.
		fatal(fmt.Errorf("drain timed out after %v: %w", *drainWait, err))
	}
	srv.Close()

	stats := srv.Stats()
	fmt.Printf("seqserve: drained after %.1fs: %d requests (%.1f qps), %d errors, cache hit rate %.2f (%d hits, %d coalesced, %d misses)\n",
		stats.UptimeS, stats.Requests, stats.QPS, stats.Errors,
		stats.Cache.HitRate, stats.Cache.Hits, stats.Cache.Coalesced, stats.Cache.Misses)
	if stats.Streams.Total > 0 {
		fmt.Printf("seqserve: streams: %d connections, %d lines in, %d results out (%.1f stream qps), %d line errors\n",
			stats.Streams.Total, stats.Streams.Lines, stats.Streams.Results, stats.StreamQPS, stats.Streams.Errors)
	}
	if stats.ShedTotal+stats.TimeoutTotal+stats.PanicTotal+stats.AbandonedTotal > 0 || stats.Degraded {
		fmt.Printf("seqserve: resilience: %d shed, %d timed out, %d abandoned, %d panics isolated, degraded=%v\n",
			stats.ShedTotal, stats.TimeoutTotal, stats.AbandonedTotal, stats.PanicTotal, stats.Degraded)
	}
}

// parseShardRange parses -shard's lo:hi against the loaded database
// size: 0 <= lo < hi <= n.
func parseShardRange(spec string, n int) (lo, hi int, err error) {
	loStr, hiStr, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q is not lo:hi", spec)
	}
	if lo, err = strconv.Atoi(loStr); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: bad lo: %v", spec, err)
	}
	if hi, err = strconv.Atoi(hiStr); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: bad hi: %v", spec, err)
	}
	if lo < 0 || hi <= lo || hi > n {
		return 0, 0, fmt.Errorf("-shard %d:%d outside the database's [0, %d]", lo, hi, n)
	}
	return lo, hi, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqserve:", err)
	os.Exit(1)
}
