// Command dbgen generates the synthetic SwissProt-like protein
// database used by the reproduction (see DESIGN.md's substitution
// table) and writes it as FASTA.
//
// Usage:
//
//	dbgen -n 1000 -o db.fasta
//	dbgen -n 500 -related 20 -parent P14942 -o family.fasta
//	dbgen -n 2000 -seed 42 -o db42.fasta
//
// Generation is deterministic in -seed: equal flags produce
// byte-identical FASTA on every machine, which is what makes
// indexed-vs-exact comparisons (seqalign -index vs a plain scan, or
// benchsnap's recall measurement) reproducible anywhere. The default
// seed is 20061001 — the paper's IISWC 2006 date — and is shared by
// every tool that generates synthetic databases (seqalign, indexbuild,
// the experiment harness), so their synthetic:<n> databases all agree.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bio"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "number of sequences")
		seed    = flag.Int64("seed", 20061001, "generator seed; equal seeds generate identical databases on every machine (default: the paper's IISWC 2006 date)")
		meanLen = flag.Int("mean", 360, "mean sequence length")
		related = flag.Int("related", 0, "number of planted homologs")
		parent  = flag.String("parent", "P14942", "Table II accession the homologs derive from")
		out     = flag.String("o", "-", "output path ('-' for stdout)")
	)
	flag.Parse()

	spec := bio.DefaultDBSpec(*n)
	spec.Seed = *seed
	spec.MeanLen = *meanLen
	if *related > 0 {
		spec.Related = *related
		spec.RelatedTo = bio.PaperQuery(*parent)
	}
	db := bio.SyntheticDB(spec)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := bio.WriteFASTA(w, db.Seqs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dbgen: wrote %d sequences, %d residues (mean %.0f)\n",
		db.NumSeqs(), db.TotalResidues(), db.MeanLen())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbgen:", err)
	os.Exit(1)
}
