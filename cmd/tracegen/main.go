// Command tracegen generates the instruction trace of one of the
// paper's workloads and reports its Table III / Figure 1 statistics,
// optionally dumping decoded instructions. With -o the trace is
// streamed straight into the binary file format as it is emitted —
// tracegen's memory footprint is flat no matter how many instructions
// the run produces.
//
// Usage:
//
//	tracegen -app ssearch34 -seqs 24
//	tracegen -app blast -seqs 8 -dump 40
//	tracegen -app ssearch34 -seqs 96 -o ssearch.trc -cap 50000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		app      = flag.String("app", "ssearch34", "workload: "+strings.Join(workloads.Names, " | "))
		seqs     = flag.Int("seqs", 24, "database sequences")
		dump     = flag.Int("dump", 0, "print the first N instructions")
		out      = flag.String("o", "", "stream the binary trace to this file (for cmd/simulate -tracefile)")
		traceCap = flag.Uint64("cap", 0, "cap the written trace at N instructions (0 = all)")
	)
	flag.Parse()

	spec := workloads.PaperSpec(*seqs)
	w, err := workloads.New(*app, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	var cs trace.CountingSink
	sinks := trace.TeeSink{&cs}
	var rec trace.Recorder
	if *dump > 0 {
		sinks = append(sinks, &trace.LimitSink{Inner: &rec, Limit: uint64(*dump)})
	}
	var fw *trace.FileWriter
	var outFile *os.File
	if *out != "" {
		outFile, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fw, err = trace.NewFileWriter(outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		sinks = append(sinks, &trace.LimitSink{Inner: fw, Limit: *traceCap})
	}
	info := w.Trace(sinks)
	if fw != nil {
		if err := fw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d instructions to %s\n", fw.Count(), *out)
	}

	fmt.Printf("workload %s: %d instructions (query %d aa vs %d sequences)\n",
		w.Name(), cs.Total, spec.Query.Len(), spec.DB.NumSeqs())
	fmt.Println("instruction breakdown:")
	bd := cs.Breakdown()
	for c := isa.Breakdown(0); c < isa.NumBreakdowns; c++ {
		if bd[c] == 0 {
			continue
		}
		fmt.Printf("  %-8v %12d  %5.1f%%\n", c, bd[c], 100*float64(bd[c])/float64(cs.Total))
	}
	top := 0
	for _, s := range info.Scores {
		if s > top {
			top = s
		}
	}
	fmt.Printf("best alignment score in run: %d\n", top)
	if *dump > 0 {
		fmt.Printf("\nfirst %d instructions:\n", rec.Len())
		for _, in := range rec.Insts {
			fmt.Println(" ", in)
		}
	}
}
